// Must-held-lockset dataflow: a flow-sensitive strengthening of the
// region-based SO analysis in this package. Where solveMustSync
// reasons about lexical synchronized regions, BuildMustLock tracks the
// set of abstract lock objects provably held immediately before every
// instruction, with a context-insensitive call-edge summary: the locks
// held at a function's entry are the intersection, over all of its
// call sites, of the locks held at the call. Thread roots (main and
// started run methods) enter with no locks — a start edge cuts the
// lockset exactly as it cuts the SO dataflow.
package icfg

import (
	"racedet/internal/ir"
	"racedet/internal/pointsto"
)

// MustLock is the fixed point of the must-held-lockset dataflow.
type MustLock struct {
	g     *Graph
	entry map[*ir.Func]pointsto.ObjSet
	at    map[*ir.Instr]pointsto.ObjSet
}

// callSite is one call edge origin: the instruction and its function.
type callSite struct {
	fn *ir.Func
	in *ir.Instr
}

// BuildMustLock runs the dataflow to its greatest fixed point.
//
// Transfer functions (per instruction, on the set ML of held locks):
//
//	monitorenter u   ML ∪= {MustPT(u)}        (nothing if u has no must object)
//	monitorexit  u   ML −= MayPT(u)           (∅ if MayPT unknown: some lock was released)
//	wait         u   ML −= MayPT(u)           (the monitor is released while waiting)
//	call / start     identity                  (monitors are lexically scoped; a callee
//	                                            cannot release a caller's lock, and wait
//	                                            reacquires before returning)
//
// Block join is set intersection; the entry block of f starts from the
// call-edge summary E(f) = ∩ over call sites of ML before the call,
// with E = ∅ for thread roots and for functions without call sites.
// Everything is initialized optimistically (⊤ = all abstract objects)
// and only ever shrinks, so the iteration converges to the greatest
// fixed point and the result is deterministic.
func BuildMustLock(g *Graph) *MustLock {
	m := &MustLock{
		g:     g,
		entry: make(map[*ir.Func]pointsto.ObjSet),
		at:    make(map[*ir.Instr]pointsto.ObjSet),
	}

	all := pointsto.ObjSet{}
	for _, o := range g.pts.Objects() {
		all[o] = struct{}{}
	}

	sites := make(map[*ir.Func][]callSite)
	for _, fn := range g.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				for _, callee := range g.pts.Callees[in] {
					sites[callee] = append(sites[callee], callSite{fn, in})
				}
			}
		}
	}
	rootFn := make(map[*ir.Func]bool)
	for _, r := range g.roots {
		rootFn[r.Fn] = true
	}

	for _, fn := range g.prog.Funcs {
		if rootFn[fn] || len(sites[fn]) == 0 {
			m.entry[fn] = pointsto.ObjSet{}
		} else {
			m.entry[fn] = all
		}
	}

	// Outer fixpoint over entry summaries: flow every function, read
	// off ML before each call, tighten callee entries, repeat.
	mlAtCall := make(map[*ir.Instr]pointsto.ObjSet)
	changed := true
	for changed {
		changed = false
		for _, fn := range g.prog.Funcs {
			m.flowFn(fn, all, func(in *ir.Instr, ml pointsto.ObjSet) {
				if in.Op == ir.OpCall {
					mlAtCall[in] = cloneSet(ml)
				}
			})
		}
		for _, fn := range g.prog.Funcs {
			if rootFn[fn] || len(sites[fn]) == 0 {
				continue
			}
			var e pointsto.ObjSet
			for i, s := range sites[fn] {
				if i == 0 {
					e = cloneSet(mlAtCall[s.in])
				} else {
					e = intersect(e, mlAtCall[s.in])
				}
			}
			if !sameSet(e, m.entry[fn]) {
				m.entry[fn] = e
				changed = true
			}
		}
	}

	// Final pass records the per-instruction before-states.
	for _, fn := range g.prog.Funcs {
		m.flowFn(fn, all, func(in *ir.Instr, ml pointsto.ObjSet) {
			m.at[in] = cloneSet(ml)
		})
	}
	return m
}

// flowFn runs the intraprocedural block fixpoint for one function from
// its current entry summary and replays the stable solution through
// record with the ML state holding immediately before each instruction.
func (m *MustLock) flowFn(fn *ir.Func, all pointsto.ObjSet, record func(*ir.Instr, pointsto.ObjSet)) {
	out := make(map[*ir.Block]pointsto.ObjSet, len(fn.Blocks))
	for _, b := range fn.Blocks {
		out[b] = all
	}
	blockIn := func(b *ir.Block) pointsto.ObjSet {
		if b == fn.Entry {
			return cloneSet(m.entry[fn])
		}
		var in pointsto.ObjSet
		for i, p := range b.Preds {
			if i == 0 {
				in = cloneSet(out[p])
			} else {
				in = intersect(in, out[p])
			}
		}
		if in == nil {
			in = pointsto.ObjSet{}
		}
		return in
	}
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks {
			ml := blockIn(b)
			for _, in := range b.Instrs {
				m.transfer(fn, in, ml)
			}
			if !sameSet(ml, out[b]) {
				out[b] = ml
				changed = true
			}
		}
	}
	for _, b := range fn.Blocks {
		ml := blockIn(b)
		for _, in := range b.Instrs {
			record(in, ml)
			m.transfer(fn, in, ml)
		}
	}
}

// transfer applies one instruction's effect to ml in place.
func (m *MustLock) transfer(fn *ir.Func, in *ir.Instr, ml pointsto.ObjSet) {
	switch in.Op {
	case ir.OpMonEnter:
		if o := m.g.pts.MustPts(fn, in.Src[0]); o != nil {
			ml[o] = struct{}{}
		}
	case ir.OpMonExit, ir.OpWait:
		vp := m.g.pts.VarPts(fn, in.Src[0])
		if len(vp) == 0 {
			for o := range ml {
				delete(ml, o)
			}
			return
		}
		for o := range vp {
			delete(ml, o)
		}
	}
}

// At returns the locks provably held immediately before in executes.
func (m *MustLock) At(in *ir.Instr) pointsto.ObjSet {
	if s := m.at[in]; s != nil {
		return s
	}
	return pointsto.ObjSet{}
}

// Entry returns the call-edge summary E(fn): locks provably held at
// every entry to fn.
func (m *MustLock) Entry(fn *ir.Func) pointsto.ObjSet {
	if s := m.entry[fn]; s != nil {
		return s
	}
	return pointsto.ObjSet{}
}
