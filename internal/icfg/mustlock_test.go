package icfg

import (
	"testing"
)

func TestMustLockCallerCoversCallee(t *testing.T) {
	prog, g := build(t, `
class Shared { int a; int b; }
class W extends Thread {
    Shared s;
    W(Shared s0) { s = s0; }
    void run() {
        synchronized (s) { helper(); }
        helper2();
    }
    void helper() { s.a = 1; }
    void helper2() { s.b = 2; }
}
class M {
    static void main() {
        Shared s = new Shared();
        W w = new W(s);
        w.start();
        w.join();
    }
}`)
	ml := BuildMustLock(g)

	// helper's only call site is inside the synchronized block, so the
	// entry summary carries the Shared lock into the callee access.
	helper := prog.FuncByName("W.helper")
	if s := ml.Entry(helper); len(s) != 1 {
		t.Errorf("Entry(helper) = %v, want the Shared object", s.Sorted())
	}
	writeA := accessIn(t, helper, isPut("a"))
	if s := ml.At(writeA); len(s) != 1 {
		t.Errorf("At(s.a write) = %v, want the Shared object", s.Sorted())
	}

	// helper2 is called after the block: no locks at entry.
	helper2 := prog.FuncByName("W.helper2")
	writeB := accessIn(t, helper2, isPut("b"))
	if s := ml.At(writeB); len(s) != 0 {
		t.Errorf("At(s.b write) = %v, want empty", s.Sorted())
	}

	// Thread roots enter lock-free.
	run := prog.FuncByName("W.run")
	if s := ml.Entry(run); len(s) != 0 {
		t.Errorf("Entry(run) = %v, want empty (thread root)", s.Sorted())
	}
}

func TestMustLockTwoContextsIntersect(t *testing.T) {
	prog, g := build(t, `
class Shared { int c; }
class A {
    Shared s;
    void locked() { synchronized (s) { helper(); } }
    void unlocked() { helper(); }
    void helper() { s.c = 1; }
}
class M {
    static void main() {
        A a = new A();
        a.s = new Shared();
        a.locked();
        a.unlocked();
    }
}`)
	ml := BuildMustLock(g)
	helper := prog.FuncByName("A.helper")
	// One caller holds the lock, one does not: the summary is empty.
	if s := ml.Entry(helper); len(s) != 0 {
		t.Errorf("Entry(helper) = %v, want empty (unlocked caller)", s.Sorted())
	}
}

func TestMustLockWaitReleases(t *testing.T) {
	prog, g := build(t, `
class Shared { int a; int b; }
class W extends Thread {
    Shared s;
    W(Shared s0) { s = s0; }
    void run() {
        synchronized (s) {
            s.a = 1;
            s.wait();
            s.b = 2;
        }
    }
}
class M {
    static void main() {
        Shared s = new Shared();
        W w = new W(s);
        synchronized (s) { s.notify(); }
        w.start();
        w.join();
    }
}`)
	ml := BuildMustLock(g)
	run := prog.FuncByName("W.run")
	writeA := accessIn(t, run, isPut("a"))
	if s := ml.At(writeA); len(s) != 1 {
		t.Errorf("At(pre-wait write) = %v, want the Shared object", s.Sorted())
	}
	// wait releases the monitor; the must set is cleared conservatively
	// even though the monitor is reacquired before the access runs.
	writeB := accessIn(t, run, isPut("b"))
	if s := ml.At(writeB); len(s) != 0 {
		t.Errorf("At(post-wait write) = %v, want empty (conservative across wait)", s.Sorted())
	}
	// The region-based SO analysis still covers the post-wait access —
	// must-lock complements it, the consumer unions both.
	if s := g.MustSyncOf(run, writeB); len(s) != 1 {
		t.Errorf("MustSync(post-wait write) = %v, want the region lock", s.Sorted())
	}
}
