// Package icfg builds the interthread call graph (ICG) of §5.2 — the
// interprocedural abstraction of the interthread control flow graph —
// and runs the two analyses the static datarace conditions need on it:
//
//   - MustSync: the set of synchronization objects that are always
//     held at a node (the SO dataflow of §5.3), and
//   - MustThread: the must points-to sets of the thread roots that can
//     reach a node along intrathread paths.
//
// ICG nodes exist per method and per synchronized block (a notable
// difference from standard call graphs, as the paper points out);
// start edges are the only interthread edges, and they cut both
// analyses: a thread root begins with no locks and a fresh thread.
package icfg

import (
	"fmt"
	"sort"

	"racedet/internal/ir"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

// Node is an ICG node: a method, or one synchronized region of a
// method (including the method-level region of synchronized methods).
type Node struct {
	ID     int
	Fn     *ir.Func
	Region *lower.SyncRegion // nil for the method node

	// Preds are the intrathread predecessor nodes: callers' containing
	// nodes for method nodes, the lexically enclosing node for region
	// nodes. Thread-root method nodes have no intrathread preds.
	Preds []*Node

	// ThreadRoot marks main and start-invoked run methods.
	ThreadRoot bool
}

func (n *Node) String() string {
	if n.Region == nil {
		return n.Fn.Name
	}
	return fmt.Sprintf("%s/sync%d", n.Fn.Name, n.Region.ID)
}

// Graph is the ICG plus the analysis results.
type Graph struct {
	prog  *ir.Program
	low   *lower.Result
	pts   *pointsto.Result
	nodes []*Node

	methodNode map[*ir.Func]*Node
	regionNode map[*ir.Func][]*Node // by region ID

	// mustSync[node] = SO_out: abstract lock objects always held.
	mustSync map[*Node]pointsto.ObjSet

	// roots are the thread-root method nodes (main + started runs).
	roots []*Node

	// rootReach[fn] = set of roots that reach fn intrathread.
	rootReach map[*ir.Func]map[*Node]struct{}

	// mustThread[fn] = ∩ over reaching roots of MustPT(root.this).
	mustThread map[*ir.Func]pointsto.ObjSet

	// rootThis memoizes each root's receiver must points-to set.
	rootThis map[*Node]pointsto.ObjSet
}

// Build constructs the ICG and runs its dataflow analyses.
func Build(prog *ir.Program, low *lower.Result, pts *pointsto.Result) *Graph {
	g := &Graph{
		prog:       prog,
		low:        low,
		pts:        pts,
		methodNode: make(map[*ir.Func]*Node),
		regionNode: make(map[*ir.Func][]*Node),
		mustSync:   make(map[*Node]pointsto.ObjSet),
		rootReach:  make(map[*ir.Func]map[*Node]struct{}),
		mustThread: make(map[*ir.Func]pointsto.ObjSet),
	}
	g.buildNodes()
	g.wireEdges()
	g.findRoots()
	g.solveMustSync()
	g.solveMustThread()
	return g
}

func (g *Graph) newNode(n *Node) *Node {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

func (g *Graph) buildNodes() {
	for _, fn := range g.prog.Funcs {
		g.methodNode[fn] = g.newNode(&Node{Fn: fn})
		info := g.low.Infos[fn]
		if info == nil {
			continue
		}
		regions := make([]*Node, len(info.Regions))
		for i, reg := range info.Regions {
			regions[i] = g.newNode(&Node{Fn: fn, Region: reg})
		}
		g.regionNode[fn] = regions
	}
}

// NodeOfInstr returns the ICG node containing an instruction, using
// its synchronized-region stamp (innermost region, else the method).
func (g *Graph) NodeOfInstr(fn *ir.Func, in *ir.Instr) *Node {
	if len(in.SyncRegions) > 0 {
		id := in.SyncRegions[len(in.SyncRegions)-1]
		if regions := g.regionNode[fn]; id < len(regions) {
			return regions[id]
		}
	}
	return g.methodNode[fn]
}

// MethodNode returns the ICG node of a method.
func (g *Graph) MethodNode(fn *ir.Func) *Node { return g.methodNode[fn] }

// Nodes returns all ICG nodes.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Roots returns the thread-root nodes.
func (g *Graph) Roots() []*Node { return g.roots }

func (g *Graph) wireEdges() {
	addPred := func(n, p *Node) {
		for _, x := range n.Preds {
			if x == p {
				return
			}
		}
		n.Preds = append(n.Preds, p)
	}

	// Region nodes: pred is the enclosing region or the method node.
	for _, fn := range g.prog.Funcs {
		info := g.low.Infos[fn]
		if info == nil {
			continue
		}
		// Determine each region's parent by scanning instruction
		// stamps: the region whose stack ends with [.., parent, id].
		parents := make(map[int]int) // region ID -> parent region ID (-1 = method)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				st := in.SyncRegions
				for i, id := range st {
					if i == 0 {
						parents[id] = -1
					} else {
						parents[id] = st[i-1]
					}
				}
			}
		}
		for id, node := range g.regionNode[fn] {
			parent, ok := parents[id]
			if !ok || parent < 0 {
				addPred(node, g.methodNode[fn])
			} else {
				addPred(node, g.regionNode[fn][parent])
			}
		}
	}

	// Method nodes: preds are the nodes containing their call sites.
	for _, fn := range g.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				from := g.NodeOfInstr(fn, in)
				for _, callee := range g.pts.Callees[in] {
					addPred(g.methodNode[callee], from)
				}
			}
		}
	}
}

func (g *Graph) findRoots() {
	mainFn := g.prog.FuncOf[g.prog.Sem.Main]
	if mainFn != nil {
		n := g.methodNode[mainFn]
		n.ThreadRoot = true
		g.roots = append(g.roots, n)
	}
	seen := make(map[*Node]bool)
	for _, fn := range g.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpStart {
					continue
				}
				for _, runFn := range g.pts.StartTargets[in] {
					n := g.methodNode[runFn]
					if !seen[n] {
						seen[n] = true
						n.ThreadRoot = true
						g.roots = append(g.roots, n)
					}
				}
			}
		}
	}
}

// solveMustSync runs the SO dataflow of §5.3:
//
//	Gen(n)   = MustPT(u_n) for synchronized nodes, ∅ otherwise
//	SO_in(n) = ∩_{p ∈ Pred(n)} SO_out(p)   (∅ for thread roots)
//	SO_out(n) = SO_in(n) ∪ Gen(n)
//
// Initialization is optimistic (⊤ = all objects) and iteration only
// shrinks sets, converging to the greatest fixed point.
func (g *Graph) solveMustSync() {
	all := pointsto.ObjSet{}
	for _, o := range g.pts.Objects() {
		all[o] = struct{}{}
	}

	gen := func(n *Node) pointsto.ObjSet {
		s := pointsto.ObjSet{}
		if n.Region != nil {
			if o := g.pts.MustPts(n.Fn, n.Region.LockReg); o != nil {
				s[o] = struct{}{}
			}
		}
		return s
	}

	out := make(map[*Node]pointsto.ObjSet)
	for _, n := range g.nodes {
		if n.ThreadRoot {
			out[n] = gen(n)
		} else {
			out[n] = all
		}
	}

	changed := true
	for changed {
		changed = false
		for _, n := range g.nodes {
			var in pointsto.ObjSet
			if n.ThreadRoot || len(n.Preds) == 0 {
				in = pointsto.ObjSet{}
			} else {
				for i, p := range n.Preds {
					if i == 0 {
						in = cloneSet(out[p])
					} else {
						in = intersect(in, out[p])
					}
				}
			}
			newOut := union(in, gen(n))
			if !sameSet(newOut, out[n]) {
				out[n] = newOut
				changed = true
			}
		}
	}
	g.mustSync = out
}

// MustSyncOf returns the abstract lock objects always held at an
// instruction: SO_out of its containing node.
func (g *Graph) MustSyncOf(fn *ir.Func, in *ir.Instr) pointsto.ObjSet {
	n := g.NodeOfInstr(fn, in)
	if s := g.mustSync[n]; s != nil {
		return s
	}
	return pointsto.ObjSet{}
}

// solveMustThread computes, per function, the intersection over all
// intrathread-reaching thread roots of the root receiver's must
// points-to set (Equation 3). The main root contributes the synthetic
// main-thread object.
func (g *Graph) solveMustThread() {
	// Intrathread reachability over call edges: root method → callees.
	callees := make(map[*ir.Func][]*ir.Func)
	for _, fn := range g.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					callees[fn] = append(callees[fn], g.pts.Callees[in]...)
				}
			}
		}
	}
	for _, root := range g.roots {
		seen := map[*ir.Func]bool{}
		stack := []*ir.Func{root.Fn}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[fn] {
				continue
			}
			seen[fn] = true
			set := g.rootReach[fn]
			if set == nil {
				set = make(map[*Node]struct{})
				g.rootReach[fn] = set
			}
			set[root] = struct{}{}
			stack = append(stack, callees[fn]...)
		}
	}

	mainFn := g.prog.FuncOf[g.prog.Sem.Main]
	rootThis := func(root *Node) pointsto.ObjSet {
		if root.Fn == mainFn {
			return pointsto.ObjSet{g.pts.MainObj(): struct{}{}}
		}
		if o := g.pts.MustPts(root.Fn, 0); o != nil {
			return pointsto.ObjSet{o: struct{}{}}
		}
		return pointsto.ObjSet{}
	}

	for _, fn := range g.prog.Funcs {
		roots := g.rootReach[fn]
		var mt pointsto.ObjSet
		first := true
		for root := range roots {
			rt := rootThisMemo(g, root, rootThis)
			if first {
				mt = cloneSet(rt)
				first = false
			} else {
				mt = intersect(mt, rt)
			}
		}
		if mt == nil {
			mt = pointsto.ObjSet{}
		}
		g.mustThread[fn] = mt
	}
}

// rootThisMemo caches rootThis per root within one Build (the cache
// lives on the Graph to avoid cross-build leakage).
func rootThisMemo(g *Graph, root *Node, f func(*Node) pointsto.ObjSet) pointsto.ObjSet {
	if g.rootThis == nil {
		g.rootThis = make(map[*Node]pointsto.ObjSet)
	}
	if s, ok := g.rootThis[root]; ok {
		return s
	}
	s := f(root)
	g.rootThis[root] = s
	return s
}

// MustThreadOf returns MustThread(u) for any instruction of fn.
func (g *Graph) MustThreadOf(fn *ir.Func) pointsto.ObjSet {
	if s := g.mustThread[fn]; s != nil {
		return s
	}
	return pointsto.ObjSet{}
}

// ReachingRoots lists the thread roots reaching fn (sorted, for dumps).
func (g *Graph) ReachingRoots(fn *ir.Func) []*Node {
	set := g.rootReach[fn]
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ---------------------------------------------------------------------------
// small set helpers

func cloneSet(s pointsto.ObjSet) pointsto.ObjSet {
	out := pointsto.ObjSet{}
	for o := range s {
		out[o] = struct{}{}
	}
	return out
}

func intersect(a, b pointsto.ObjSet) pointsto.ObjSet {
	out := pointsto.ObjSet{}
	for o := range a {
		if b.Has(o) {
			out[o] = struct{}{}
		}
	}
	return out
}

func union(a, b pointsto.ObjSet) pointsto.ObjSet {
	out := cloneSet(a)
	for o := range b {
		out[o] = struct{}{}
	}
	return out
}

func sameSet(a, b pointsto.ObjSet) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b.Has(o) {
			return false
		}
	}
	return true
}
