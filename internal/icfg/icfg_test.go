package icfg

import (
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

func build(t *testing.T, src string) (*ir.Program, *Graph) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	pts := pointsto.Analyze(low.Prog)
	return low.Prog, Build(low.Prog, low, pts)
}

// accessIn returns the first instruction of fn matching pred.
func accessIn(t *testing.T, fn *ir.Func, pred func(*ir.Instr) bool) *ir.Instr {
	t.Helper()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if pred(in) {
				return in
			}
		}
	}
	t.Fatalf("no matching instruction in %s", fn.Name)
	return nil
}

func isPut(name string) func(*ir.Instr) bool {
	return func(in *ir.Instr) bool {
		return (in.Op == ir.OpPutField || in.Op == ir.OpPutStatic) && in.Field.Name == name
	}
}

const syncProgram = `
class Shared {
    int a;
    int b;
    int c;
}
class W extends Thread {
    Shared s;
    W(Shared s0) { s = s0; }

    synchronized void viaMethod() {
        s.a = 1;
    }
    void viaBlock() {
        synchronized (s) {
            s.b = 2;
            helper();
        }
    }
    void helper() {
        s.c = 3;
    }
    void run() {
        viaMethod();
        viaBlock();
        s.c = 4;
    }
}
class M {
    static void main() {
        Shared s = new Shared();
        W w1 = new W(s);
        w1.start();
        w1.join();
    }
}`

func TestMustSync(t *testing.T) {
	prog, g := build(t, syncProgram)

	// The write inside the synchronized block must be protected by the
	// (single-instance) Shared object.
	viaBlock := prog.FuncByName("W.viaBlock")
	writeB := accessIn(t, viaBlock, isPut("b"))
	if s := g.MustSyncOf(viaBlock, writeB); len(s) != 1 {
		t.Errorf("MustSync(s.b write) = %v, want the Shared object", s.Sorted())
	}

	// helper is called only from inside the block: the lock is still
	// must-held there.
	helper := prog.FuncByName("W.helper")
	writeC := accessIn(t, helper, isPut("c"))
	if s := g.MustSyncOf(helper, writeC); len(s) != 1 {
		t.Errorf("MustSync(helper's write) = %v, want the Shared object (caller holds it)", s.Sorted())
	}

	// The unprotected write in run has no must-held locks.
	run := prog.FuncByName("W.run")
	writeC4 := accessIn(t, run, isPut("c"))
	if s := g.MustSyncOf(run, writeC4); len(s) != 0 {
		t.Errorf("MustSync(unprotected write) = %v, want empty", s.Sorted())
	}

	// viaMethod's write is protected by the method receiver (the W
	// instance, single-instance here).
	viaMethod := prog.FuncByName("W.viaMethod")
	writeA := accessIn(t, viaMethod, isPut("a"))
	if s := g.MustSyncOf(viaMethod, writeA); len(s) != 1 {
		t.Errorf("MustSync(sync method write) = %v, want the receiver", s.Sorted())
	}
}

func TestHelperCalledFromTwoContextsLosesMustSync(t *testing.T) {
	_, g := build(t, `
class Shared { int c; }
class A {
    Shared s;
    void locked() { synchronized (s) { helper(); } }
    void unlocked() { helper(); }
    void helper() { s.c = 1; }
}
class M {
    static void main() {
        A a = new A();
        a.s = new Shared();
        a.locked();
        a.unlocked();
    }
}`)
	var helper *ir.Func
	for _, fn := range g.prog.Funcs {
		if fn.Name == "A.helper" {
			helper = fn
		}
	}
	write := accessIn(t, helper, isPut("c"))
	if s := g.MustSyncOf(helper, write); len(s) != 0 {
		t.Errorf("helper reachable without the lock: MustSync = %v, want empty", s.Sorted())
	}
}

func TestThreadRoots(t *testing.T) {
	prog, g := build(t, syncProgram)
	roots := g.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want [main, W.run]", roots)
	}
	names := map[string]bool{}
	for _, r := range roots {
		names[r.Fn.Name] = true
	}
	if !names["M.main"] || !names["W.run"] {
		t.Errorf("roots = %v", names)
	}
	// helper is reachable only from the run root.
	helper := prog.FuncByName("W.helper")
	rr := g.ReachingRoots(helper)
	if len(rr) != 1 || rr[0].Fn.Name != "W.run" {
		t.Errorf("reaching roots of helper = %v", rr)
	}
}

func TestMustThread(t *testing.T) {
	prog, g := build(t, syncProgram)
	main := prog.FuncByName("M.main")
	if s := g.MustThreadOf(main); len(s) != 1 {
		t.Errorf("MustThread(main) = %v, want the synthetic main object", s.Sorted())
	}
	// W.run's receiver is the single W allocation: must-thread known.
	run := prog.FuncByName("W.run")
	if s := g.MustThreadOf(run); len(s) != 1 {
		t.Errorf("MustThread(run) = %v, want the single W instance", s.Sorted())
	}
}

func TestMustThreadEmptyForMultiInstanceThreads(t *testing.T) {
	prog, g := build(t, `
class W extends Thread {
    int n;
    void run() { n = 1; }
}
class M {
    static void main() {
        for (int i = 0; i < 2; i++) {
            W w = new W();
            w.start();
        }
    }
}`)
	run := prog.FuncByName("W.run")
	if s := g.MustThreadOf(run); len(s) != 0 {
		t.Errorf("MustThread of a loop-started run = %v, want empty", s.Sorted())
	}
}

func TestMethodCalledFromBothThreadsHasEmptyMustThread(t *testing.T) {
	prog, g := build(t, `
class Util {
    static int f(int x) { return x + 1; }
}
class W extends Thread {
    int n;
    void run() { n = Util.f(1); }
}
class M {
    static void main() {
        W w = new W();
        w.start();
        print(Util.f(2));
        w.join();
    }
}`)
	f := prog.FuncByName("Util.f")
	if s := g.MustThreadOf(f); len(s) != 0 {
		t.Errorf("MustThread(Util.f) = %v, want empty (reachable from two roots)", s.Sorted())
	}
	rr := g.ReachingRoots(f)
	if len(rr) != 2 {
		t.Errorf("reaching roots = %v, want 2", rr)
	}
}

func TestNodePerSyncRegion(t *testing.T) {
	prog, g := build(t, syncProgram)
	// W has: viaMethod (method-level region), viaBlock (block region),
	// plus method nodes. Count region nodes.
	regionNodes := 0
	for _, n := range g.Nodes() {
		if n.Region != nil {
			regionNodes++
		}
	}
	if regionNodes != 2 {
		t.Errorf("region nodes = %d, want 2", regionNodes)
	}
	// NodeOfInstr: the write in viaBlock maps to the block's region
	// node.
	viaBlock := prog.FuncByName("W.viaBlock")
	write := accessIn(t, viaBlock, isPut("b"))
	n := g.NodeOfInstr(viaBlock, write)
	if n.Region == nil {
		t.Error("write inside synchronized block should map to the region node")
	}
}
