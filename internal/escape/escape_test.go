package escape

import (
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

func analyze(t *testing.T, src string) (*ir.Program, *pointsto.Result, *Result) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	pts := pointsto.Analyze(low.Prog)
	return low.Prog, pts, Analyze(low.Prog, pts)
}

// escapedClasses lists the class names of escaped alloc-site objects.
func escapedClasses(pts *pointsto.Result, esc *Result) map[string]bool {
	out := map[string]bool{}
	for _, o := range pts.Objects() {
		if o.Kind == pointsto.ObjAlloc && esc.Escaped(o) {
			out[o.Class.Name] = true
		}
	}
	return out
}

func TestStaticsEscape(t *testing.T) {
	_, pts, esc := analyze(t, `
class A { int v; }
class M {
    static A global;
    static void main() {
        global = new A();
        A local = new A();
        local.v = 1;
    }
}`)
	// Exactly one A site escapes (the one stored in the static).
	count := 0
	for _, o := range pts.Objects() {
		if o.Kind == pointsto.ObjAlloc && esc.Escaped(o) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("escaped alloc sites = %d, want 1", count)
	}
}

func TestThreadReachableEscapes(t *testing.T) {
	prog, pts, esc := analyze(t, `
class Data { int v; }
class W extends Thread {
    Data d;
    W(Data d0) { d = d0; }
    void run() { d.v = 1; }
}
class M {
    static void main() {
        Data shared = new Data();
        Data local = new Data();
        local.v = 2;
        W w = new W(shared);
        w.start();
        w.join();
    }
}`)
	names := escapedClasses(pts, esc)
	if !names["W"] {
		t.Error("started thread object must escape")
	}
	if !names["Data"] {
		t.Error("data handed to a thread must escape")
	}
	// The local Data must not: check the local write is thread-local.
	main := prog.FuncByName("M.main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && in.Field.Name == "v" {
				if !esc.ThreadLocalAccess(main, in) {
					t.Error("write to the unshared local Data should be thread-local")
				}
			}
		}
	}
}

func TestThreadSpecificCtorAllocatedData(t *testing.T) {
	// The paper's §5.4 pattern: per-thread data allocated in the
	// constructor and used only by the thread itself. The buffer
	// escapes through the thread object but is thread-specific.
	prog, _, esc := analyze(t, `
class W extends Thread {
    int[] buf;
    int sum;
    W() { buf = new int[16]; }
    void run() {
        for (int i = 0; i < 16; i++) { buf[i] = i; }
        for (int i = 0; i < 16; i++) { sum = sum + buf[i]; }
    }
}
class M {
    static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start();
        w1.join(); w2.join();
    }
}`)
	sp := prog.Sem
	w := sp.Classes["W"]
	if !esc.ThreadSpecificField(w.LookupField("buf")) {
		t.Error("buf accessed only via this in ctor/run must be thread-specific")
	}
	if !esc.ThreadSpecificField(w.LookupField("sum")) {
		t.Error("sum accessed only via this in run must be thread-specific")
	}
	if esc.UnsafeThread(w) {
		t.Error("W is a safe thread")
	}
	// The buffer accesses in run must be prunable.
	run := prog.FuncByName("W.run")
	for _, b := range run.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpArrayStore {
				if !esc.ThreadLocalAccess(run, in) {
					t.Error("writes to the ctor-allocated buffer must be thread-local")
				}
			}
		}
	}
}

func TestSharedDataThroughThreadFieldEscapes(t *testing.T) {
	// The racy-smoke pattern: the SAME Data flows into two threads via
	// their (thread-specific-looking) field — it must escape.
	prog, pts, esc := analyze(t, `
class Data { int f; }
class W extends Thread {
    Data d;
    W(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class M {
    static void main() {
        Data x = new Data();
        W w1 = new W(x);
        W w2 = new W(x);
        w1.start(); w2.start();
        w1.join(); w2.join();
        print(x.f);
    }
}`)
	names := escapedClasses(pts, esc)
	if !names["Data"] {
		t.Fatal("Data reachable by two threads must escape")
	}
	run := prog.FuncByName("W.run")
	for _, b := range run.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && in.Field.Name == "f" {
				if esc.ThreadLocalAccess(run, in) {
					t.Error("the racy write must not be pruned")
				}
			}
		}
	}
}

func TestFieldReadOutsideThreadDisqualifiesTS(t *testing.T) {
	prog, _, esc := analyze(t, `
class W extends Thread {
    int result;
    void run() { result = 42; }
}
class M {
    static void main() {
        W w = new W();
        w.start();
        w.join();
        print(w.result); // external access via w, not this
    }
}`)
	w := prog.Sem.Classes["W"]
	if esc.ThreadSpecificField(w.LookupField("result")) {
		t.Error("a field read from outside the thread is not thread-specific")
	}
}

func TestUnsafeThreadByStartInCtor(t *testing.T) {
	prog, _, esc := analyze(t, `
class W extends Thread {
    int n;
    W() { this.start(); }
    void run() { n = 1; }
}
class M {
    static void main() {
        W w = new W();
        w.join();
    }
}`)
	w := prog.Sem.Classes["W"]
	if !esc.UnsafeThread(w) {
		t.Error("starting inside the constructor makes the thread unsafe")
	}
	if esc.ThreadSpecificField(w.LookupField("n")) {
		t.Error("fields of unsafe threads cannot be thread-specific")
	}
}

func TestUnsafeThreadByEscapingThis(t *testing.T) {
	prog, _, esc := analyze(t, `
class Registry { static W last; }
class W extends Thread {
    int n;
    W() { Registry.last = this; }
    void run() { n = 1; }
}
class M {
    static void main() {
        W w = new W();
        w.start();
        w.join();
    }
}`)
	w := prog.Sem.Classes["W"]
	if !esc.UnsafeThread(w) {
		t.Error("this escaping the constructor makes the thread unsafe")
	}
}

func TestExplicitRunCallDisqualifies(t *testing.T) {
	prog, _, esc := analyze(t, `
class W extends Thread {
    int n;
    void run() { n = 1; }
}
class M {
    static void main() {
        W w = new W();
        w.run(); // explicit call: run is not thread-specific
        w.start();
        w.join();
    }
}`)
	w := prog.Sem.Classes["W"]
	if esc.ThreadSpecificField(w.LookupField("n")) {
		t.Error("explicitly-invoked run disqualifies its fields")
	}
}
