// Package escape implements the escape analysis of §5.4: classic
// thread-local object identification, extended with the paper's
// "thread-specific" refinement for objects tied to a single thread
// even though references to them escape through the thread object.
//
// Roots of escape are static fields and started thread objects;
// reachability propagates through object fields and array elements —
// except through the thread-specific fields of safe threads, which by
// definition only the owning thread dereferences.
package escape

import (
	"racedet/internal/ir"
	"racedet/internal/lang/sem"
	"racedet/internal/pointsto"
)

// Result holds the escape classification.
type Result struct {
	prog *ir.Program
	pts  *pointsto.Result

	escaped map[*pointsto.AbsObj]bool

	// threadSpecificFields maps a field to true when every access to
	// it is a this-access inside a thread-specific method of a safe
	// thread class.
	threadSpecificFields map[*sem.Field]bool

	// threadSpecificMethods per class.
	threadSpecificMethods map[*sem.Method]bool

	// unsafeThreads marks thread classes whose construction may
	// overlap their execution.
	unsafeThreads map[*sem.Class]bool
}

// Analyze computes the escape classification.
func Analyze(prog *ir.Program, pts *pointsto.Result) *Result {
	r := &Result{
		prog:                  prog,
		pts:                   pts,
		escaped:               make(map[*pointsto.AbsObj]bool),
		threadSpecificFields:  make(map[*sem.Field]bool),
		threadSpecificMethods: make(map[*sem.Method]bool),
		unsafeThreads:         make(map[*sem.Class]bool),
	}
	r.computeThreadSpecific()
	r.computeEscape()
	return r
}

// Escaped reports whether the abstract object may be reachable by more
// than one thread.
func (r *Result) Escaped(o *pointsto.AbsObj) bool { return r.escaped[o] }

// ThreadLocalAccess reports that an access instruction can never be
// involved in a datarace because every object it may touch is
// unescaped, or the accessed field is thread-specific.
func (r *Result) ThreadLocalAccess(fn *ir.Func, in *ir.Instr) bool {
	if !in.IsAccess() {
		return false
	}
	_, isArray, refReg, field := in.AccessInfo()
	if field != nil && field.Static {
		return false // statics always escape
	}
	if field != nil && r.threadSpecificFields[field] {
		return true
	}
	_ = isArray
	objs := r.pts.VarPts(fn, refReg)
	if len(objs) == 0 {
		// No allocation can reach this access (dead or null-only
		// path): it cannot race.
		return true
	}
	for o := range objs {
		if r.escaped[o] {
			return false
		}
	}
	return true
}

// ThreadSpecificField reports the §5.4 classification of a field.
func (r *Result) ThreadSpecificField(f *sem.Field) bool { return r.threadSpecificFields[f] }

// ThreadSpecificMethod reports the §5.4 classification of a method:
// it executes only on the thread of its receiver (a thread class's
// constructor, or run and everything it transitively calls without an
// explicit invocation elsewhere).
func (r *Result) ThreadSpecificMethod(m *sem.Method) bool { return r.threadSpecificMethods[m] }

// UnsafeThread reports whether the class is an unsafe thread (its
// execution may overlap its construction).
func (r *Result) UnsafeThread(cl *sem.Class) bool { return r.unsafeThreads[cl] }

// ---------------------------------------------------------------------------
// Thread-specific methods and fields

// computeThreadSpecific implements the §5.4 approximation:
//
//  1. thread-specific methods: constructors of thread classes and run
//     methods not invoked explicitly; plus non-static methods all of
//     whose callers are thread-specific methods of the same class
//     passing their this as the callee's this;
//  2. unsafe threads: the constructor transitively calls start, or
//     this escapes the constructor;
//  3. thread-specific fields: fields accessed only via this inside
//     thread-specific methods (of safe threads).
func (r *Result) computeThreadSpecific() {
	// Explicitly-invoked run methods are disqualified.
	explicitRun := make(map[*sem.Method]bool)
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					for _, callee := range r.pts.Callees[in] {
						if callee.Method.Name == "run" {
							explicitRun[callee.Method] = true
						}
					}
				}
			}
		}
	}

	// Seed: thread-class constructors and non-explicit runs.
	for _, cl := range r.prog.Sem.Order {
		if !cl.IsThread() || cl.Builtin {
			continue
		}
		if ctor := cl.Methods[cl.Name]; ctor != nil && ctor.IsCtor {
			r.threadSpecificMethods[ctor] = true
		}
		if run := cl.Methods["run"]; run != nil && !explicitRun[run] {
			r.threadSpecificMethods[run] = true
		}
	}

	// Closure: m joins if every call site of m is inside a
	// thread-specific method of the same class with this→this.
	callers := r.callSites()
	changed := true
	for changed {
		changed = false
		for _, fn := range r.prog.Funcs {
			m := fn.Method
			if m.Static || r.threadSpecificMethods[m] {
				continue
			}
			sites := callers[fn]
			if len(sites) == 0 {
				continue
			}
			ok := true
			for _, s := range sites {
				callerM := s.fn.Method
				if !r.threadSpecificMethods[callerM] ||
					callerM.Class != m.Class ||
					callerM.Static ||
					len(s.in.Src) == 0 || s.in.Src[0] != 0 {
					ok = false
					break
				}
			}
			if ok {
				r.threadSpecificMethods[m] = true
				changed = true
			}
		}
	}

	// Unsafe threads: this escapes the constructor, or the constructor
	// can transitively reach a start.
	startReach := r.startReachable()
	for _, cl := range r.prog.Sem.Order {
		if !cl.IsThread() || cl.Builtin {
			continue
		}
		ctor := cl.Methods[cl.Name]
		if ctor == nil || !ctor.IsCtor {
			continue
		}
		fn := r.prog.FuncOf[ctor]
		if fn == nil {
			continue
		}
		if r.thisEscapes(fn) || startReach[fn] {
			r.unsafeThreads[cl] = true
		}
	}

	// Thread-specific fields: every access in the program must be a
	// this-access inside a thread-specific method of a safe thread.
	bad := make(map[*sem.Field]bool)
	candidate := make(map[*sem.Field]bool)
	for _, fn := range r.prog.Funcs {
		inTS := r.threadSpecificMethods[fn.Method] && !r.unsafeThreads[fn.Method.Class]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				var field *sem.Field
				var refReg int
				switch in.Op {
				case ir.OpGetField, ir.OpPutField:
					field, refReg = in.Field, in.Src[0]
				default:
					continue
				}
				// Only fields of thread classes qualify.
				if !field.Class.IsThread() {
					continue
				}
				candidate[field] = true
				if !inTS || refReg != 0 {
					bad[field] = true
				}
			}
		}
	}
	for f := range candidate {
		if !bad[f] {
			r.threadSpecificFields[f] = true
		}
	}
}

type callSite struct {
	fn *ir.Func
	in *ir.Instr
}

func (r *Result) callSites() map[*ir.Func][]callSite {
	out := make(map[*ir.Func][]callSite)
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				for _, callee := range r.pts.Callees[in] {
					out[callee] = append(out[callee], callSite{fn, in})
				}
			}
		}
	}
	return out
}

// thisEscapes reports whether register 0 of fn is stored to the heap,
// passed as a non-receiver argument, or returned.
func (r *Result) thisEscapes(fn *ir.Func) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPutField:
				if in.Src[1] == 0 {
					return true
				}
			case ir.OpPutStatic:
				if in.Src[0] == 0 {
					return true
				}
			case ir.OpArrayStore:
				if in.Src[2] == 0 {
					return true
				}
			case ir.OpCall:
				for i, s := range in.Src {
					if s == 0 && i > 0 {
						return true
					}
				}
			case ir.OpReturn:
				if len(in.Src) > 0 && in.Src[0] == 0 {
					return true
				}
			case ir.OpStart:
				if in.Src[0] == 0 {
					return true // this.start() inside the constructor
				}
			}
		}
	}
	return false
}

// startReachable computes functions from which an OpStart is reachable
// through calls.
func (r *Result) startReachable() map[*ir.Func]bool {
	direct := make(map[*ir.Func]bool)
	callees := make(map[*ir.Func][]*ir.Func)
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStart:
					direct[fn] = true
				case ir.OpCall:
					callees[fn] = append(callees[fn], r.pts.Callees[in]...)
				}
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for fn, cs := range callees {
			if direct[fn] {
				continue
			}
			for _, c := range cs {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// ---------------------------------------------------------------------------
// Escape reachability

// label is the escape lattice: NotReached < ThreadSpecific < Escaped.
type label int8

const (
	labelNone label = iota
	labelTS         // reachable only through the thread-specific region
	labelEscaped
)

func (r *Result) computeEscape() {
	labels := make(map[*pointsto.AbsObj]label)
	var work []*pointsto.AbsObj
	raise := func(o *pointsto.AbsObj, l label) {
		if labels[o] >= l {
			return
		}
		labels[o] = l
		work = append(work, o)
	}

	// tsAllocated reports whether o was allocated inside a
	// thread-specific method of a (safe) thread class — the paper's
	// pattern of per-thread data created during construction or by the
	// thread itself. Anything else stored into a thread-specific field
	// came from outside the thread and therefore escapes.
	tsAllocated := func(o *pointsto.AbsObj) bool {
		if o.Fn == nil {
			return false
		}
		m := o.Fn.Method
		return r.threadSpecificMethods[m] && !r.unsafeThreads[m.Class]
	}

	// Roots: everything stored in static fields, and every started
	// thread object, escapes.
	for _, cl := range r.prog.Sem.Order {
		co := r.pts.ClassObj(cl)
		for _, f := range cl.StaticSlots() {
			for o := range r.pts.FieldPts(co, pointsto.StaticSlotKey(f)) {
				raise(o, labelEscaped)
			}
		}
	}
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpStart {
					continue
				}
				for o := range r.pts.VarPts(fn, in.Src[0]) {
					raise(o, labelEscaped)
				}
			}
		}
	}

	// Propagate. From an escaped thread object, thread-specific fields
	// of safe classes demote the flow to labelTS when the target was
	// allocated inside the thread's own thread-specific methods;
	// everything else propagates the source label.
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		l := labels[o]
		prop := func(t *pointsto.AbsObj, throughTSField bool) {
			out := l
			if throughTSField && l == labelEscaped && tsAllocated(t) {
				out = labelTS
			}
			if l == labelTS && !tsAllocated(t) {
				// An outside object reachable through per-thread data
				// still escapes (it has other owners).
				out = labelEscaped
			}
			raise(t, out)
		}
		if o.Kind == pointsto.ObjArray {
			for t := range r.pts.FieldPts(o, pointsto.ArrayElemSlot) {
				prop(t, false)
			}
			continue
		}
		if o.Class != nil {
			for _, f := range o.Class.InstanceSlots() {
				throughTS := r.threadSpecificFields[f] && o.Class.IsThread() && !r.unsafeThreads[o.Class]
				for t := range r.pts.FieldPts(o, f.Index) {
					prop(t, throughTS)
				}
			}
		}
	}
	for o, l := range labels {
		if l == labelEscaped {
			r.escaped[o] = true
		}
	}
}
