package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/trace"
)

// samplingVariants is the matrix the throttling coverage contract is
// checked over: the serial back end at a small fixed K (fast
// demotion, the aggressive end), the adaptive controller, and the
// sharded back end at bracketing shard counts — all of which must run
// the identical router-side sampling decision procedure.
func samplingVariants(base core.Config) []struct {
	name string
	cfg  core.Config
} {
	var out []struct {
		name string
		cfg  core.Config
	}
	add := func(name string, cfg core.Config) {
		out = append(out, struct {
			name string
			cfg  core.Config
		}{name, cfg})
	}
	k4 := base
	k4.SampleK = 4
	add("sample-k=4", k4)
	ad := base
	ad.SampleK = 4
	ad.SampleBudget = 0.25
	add("sample-k=4,budget=0.25", ad)
	for _, shards := range []int{1, 2, 8} {
		c := base
		c.SampleK = 4
		c.Shards = shards
		add(fmt.Sprintf("sample-k=4,shards=%d", shards), c)
	}
	return out
}

// TestCorpusSamplingKeepsStableRaces is the coverage differential for
// adaptive throttling: on every corpus program, under ten harness
// seeds, every sampled variant must report a subset of the unsampled
// run's racy fields (throttling can only suppress, never invent) and
// must keep every field the unsampled run reported — the corpus races
// are all stable (recurring) ones, exactly the class the re-arm web
// guarantees to keep. Clean idioms staying clean falls out of the
// subset direction. The sharded sampled variants must additionally
// match the serial sampled run byte for byte.
func TestCorpusSamplingKeepsStableRaces(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				base, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if base.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, base.Err)
				}
				want := racyFields(base)

				var serialSampled string
				for _, v := range samplingVariants(core.Full().WithSeed(seed)) {
					res, err := core.RunSource(e.name+".mj", e.src, v.cfg)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d %s: runtime: %v", seed, v.name, res.Err)
					}
					got := racyFields(res)
					for f := range got {
						if !want[f] {
							t.Errorf("seed %d %s: sampled run invented a race on %s (unsampled reported %v)",
								seed, v.name, f, keys(want))
						}
					}
					for f := range want {
						if !got[f] {
							t.Errorf("seed %d %s: sampled run lost the stable race on %s (reported %v)",
								seed, v.name, f, keys(got))
						}
					}
					// Shipped accounting: every observed event lands in
					// exactly one filter bucket.
					ds := res.DetectorStats
					if ds.Accesses != ds.Shipped+ds.CacheHits+ds.OwnerSkips+ds.Sample.Suppressed {
						t.Errorf("seed %d %s: accounting broken: %d observed != %d shipped + %d cache + %d owner + %d suppressed",
							seed, v.name, ds.Accesses, ds.Shipped, ds.CacheHits, ds.OwnerSkips, ds.Sample.Suppressed)
					}
					// The serial K=4 run is the reference the sharded
					// sampled runs must reproduce byte for byte.
					if v.name == "sample-k=4" {
						serialSampled = renderReports(res)
					} else if v.cfg.Shards > 0 && v.cfg.SampleBudget == 0 {
						if g := renderReports(res); g != serialSampled {
							t.Errorf("seed %d %s diverges from serial sampled:\n--- serial ---\n%s\n--- %s ---\n%s",
								seed, v.name, serialSampled, v.name, g)
						}
					}
				}
			}
		})
	}
}

// TestCorpusSampledReplayMatchesLiveSampled pins that sampling lives
// in the detector's filter, never the recorder: a trace recorded with
// sampling OFF carries the full event stream, and replaying it with
// sampling ON reproduces a live sampled run byte for byte — serial
// and sharded. (Recording always captures the full stream because the
// tee sink disables the source-level fast path, exactly like sampling
// itself does.)
func TestCorpusSampledReplayMatchesLiveSampled(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				// Record with sampling off.
				var buf bytes.Buffer
				rec := core.Full().WithSeed(seed)
				rec.TraceTo = &buf
				live, err := core.RunSource(e.name+".mj", e.src, rec)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if live.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, live.Err)
				}

				// The live sampled run is the reference verdict.
				sampled := core.Full().WithSeed(seed)
				sampled.SampleK = 4
				ref, err := core.RunSource(e.name+".mj", e.src, sampled)
				if err != nil || ref.Err != nil {
					t.Fatalf("seed %d live sampled: %v/%v", seed, err, ref.Err)
				}
				want := renderReports(ref)

				rd, err := trace.NewReader(buf.Bytes())
				if err != nil {
					t.Fatalf("seed %d: reading trace: %v", seed, err)
				}
				for _, v := range []struct {
					name   string
					shards int
				}{{"serial", 0}, {"shards=2", 2}} {
					cfg := core.Full().WithSeed(seed)
					cfg.SampleK = 4
					cfg.Shards = v.shards
					res, err := core.ReplayTrace(rd, cfg, 1)
					if err != nil {
						t.Fatalf("seed %d replay %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d replay %s: runtime: %v", seed, v.name, res.Err)
					}
					if got := renderReports(res); got != want {
						t.Errorf("seed %d sampled replay (%s) diverges from live sampled:\n--- live ---\n%s\n--- replay ---\n%s",
							seed, v.name, want, got)
					}
				}
			}
		})
	}
}
