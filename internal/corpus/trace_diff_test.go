package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/trace"
)

// replayVariants is the matrix the record/replay equivalence contract
// is checked over: the serial back end, the sharded back end at the
// same bracketing shard counts as the live differential test, and one
// parallel-segment-decode replay.
func replayVariants(base core.Config) []struct {
	name    string
	cfg     core.Config
	workers int
} {
	var out []struct {
		name    string
		cfg     core.Config
		workers int
	}
	add := func(name string, cfg core.Config, workers int) {
		out = append(out, struct {
			name    string
			cfg     core.Config
			workers int
		}{name, cfg, workers})
	}
	add("serial", base, 1)
	for _, shards := range []int{1, 2, 8} {
		c := base
		c.Shards = shards
		add(fmt.Sprintf("shards=%d", shards), c, 1)
	}
	b := base
	b.Shards = 4
	b.BatchSize = 16
	add("shards=4,batch=16", b, 1)
	add("serial,workers=4", base, 4)
	return out
}

// TestCorpusReplayMatchesLive is the record-once/analyze-many
// differential test: on every corpus program, under ten harness seeds,
// the run is recorded as a binary trace while the serial detector
// analyzes it live, and then every replay variant — serial, sharded at
// bracketing counts, batched, and parallel segment decode — must
// reproduce the live run's ordered race reports and racy-object set
// from the trace alone, byte for byte.
func TestCorpusReplayMatchesLive(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				var buf bytes.Buffer
				cfg := core.Full().WithSeed(seed)
				cfg.TraceTo = &buf
				live, err := core.RunSource(e.name+".mj", e.src, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if live.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, live.Err)
				}
				want := renderReports(live)

				rd, err := trace.NewReader(buf.Bytes())
				if err != nil {
					t.Fatalf("seed %d: reading trace: %v", seed, err)
				}
				for _, v := range replayVariants(core.Full().WithSeed(seed)) {
					res, err := core.ReplayTrace(rd, v.cfg, v.workers)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d %s: runtime: %v", seed, v.name, res.Err)
					}
					if got := renderReports(res); got != want {
						t.Errorf("seed %d %s replay diverges from live:\n--- live ---\n%s\n--- %s ---\n%s",
							seed, v.name, want, v.name, got)
					}
				}
			}
		})
	}
}
