// Package corpus is an idiom regression suite: each testdata program
// is a realistic concurrency pattern annotated with its expected
// verdict (EXPECT-CLEAN, or EXPECT-RACY with the racy fields). The
// suite runs every program under several scheduler seeds and under
// every optimization configuration, pinning both the detector's
// precision (clean idioms stay clean) and its coverage (buggy idioms
// are caught on every schedule) — plus the paper's known-spurious
// class (lock-free hand-off, see handoff_pipeline.mj).
package corpus

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"racedet/internal/core"
)

var (
	expectCleanRE     = regexp.MustCompile(`(?m)^// EXPECT-CLEAN`)
	expectRacyRE      = regexp.MustCompile(`(?m)^// EXPECT-RACY: (.+)$`)
	expectNoDomOnlyRE = regexp.MustCompile(`(?m)^// EXPECT-RACY-NODOM-ONLY: (.+)$`)
	expectSchedDepRE  = regexp.MustCompile(`(?m)^// EXPECT-SCHED-DEP: (.+)$`)
)

type entry struct {
	name   string
	src    string
	clean  bool
	fields []string // expected racy field names (subset match)
	// nodomOnly marks the §7.2 counterexample: the full pipeline
	// misses the race (compile-time weaker-than × ownership), the
	// NoDominators configuration reports it.
	nodomOnly bool
	// schedDep marks races that only some schedules expose: the fixed
	// round-robin schedule (seed 0) must miss them, a seed sweep must
	// find them. These are the fuzzing harness's reason to exist.
	schedDep bool
}

func loadCorpus(t *testing.T) []entry {
	t.Helper()
	files, err := filepath.Glob("testdata/*.mj")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	sort.Strings(files)
	var out []entry
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		e := entry{name: strings.TrimSuffix(filepath.Base(f), ".mj"), src: src}
		switch {
		case expectCleanRE.MatchString(src):
			e.clean = true
		case expectNoDomOnlyRE.MatchString(src):
			e.nodomOnly = true
			m := expectNoDomOnlyRE.FindStringSubmatch(src)
			for _, f := range strings.Split(m[1], ",") {
				e.fields = append(e.fields, strings.TrimSpace(f))
			}
		case expectSchedDepRE.MatchString(src):
			e.schedDep = true
			m := expectSchedDepRE.FindStringSubmatch(src)
			for _, f := range strings.Split(m[1], ",") {
				e.fields = append(e.fields, strings.TrimSpace(f))
			}
		case expectRacyRE.MatchString(src):
			m := expectRacyRE.FindStringSubmatch(src)
			for _, f := range strings.Split(m[1], ",") {
				e.fields = append(e.fields, strings.TrimSpace(f))
			}
		default:
			t.Fatalf("%s: missing EXPECT annotation", f)
		}
		out = append(out, e)
	}
	return out
}

func racyFields(res *core.RunResult) map[string]bool {
	out := map[string]bool{}
	for _, r := range res.Reports {
		out[r.Access.FieldName] = true
	}
	return out
}

// TestCorpusVerdicts runs every idiom under five seeds with the full
// pipeline.
func TestCorpusVerdicts(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			if e.schedDep {
				// Schedule-dependent races: the fixed round-robin
				// schedule must miss them (else they belong in
				// EXPECT-RACY), and a 16-seed sweep must find them.
				union := map[string]bool{}
				for seed := int64(0); seed < 16; seed++ {
					res, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d: runtime: %v", seed, res.Err)
					}
					got := racyFields(res)
					for f := range got {
						union[f] = true
					}
					if seed == 0 {
						for _, want := range e.fields {
							if got[want] {
								t.Errorf("seed 0 already reports %s — race is not schedule-dependent (update the annotation!)", want)
							}
						}
					}
				}
				for _, want := range e.fields {
					if !union[want] {
						t.Errorf("16-seed sweep never exposed %s, union = %v", want, keys(union))
					}
				}
				return
			}
			for _, seed := range []int64{0, 1, 2, 3, 4} {
				res, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, res.Err)
				}
				got := racyFields(res)
				switch {
				case e.clean:
					if len(got) != 0 {
						t.Errorf("seed %d: expected clean, reported %v", seed, keys(got))
					}
				case e.nodomOnly:
					// The §7.2 counterexample: Full misses the race...
					for _, want := range e.fields {
						if got[want] {
							t.Errorf("seed %d: full pipeline now reports %s — the §7.2 counterexample no longer reproduces (update the annotation!)", seed, want)
						}
					}
					// ...and NoDominators reports it.
					nd, err := core.RunSource(e.name+".mj", e.src, core.Full().NoDominators().WithSeed(seed))
					if err != nil || nd.Err != nil {
						t.Fatalf("seed %d nodom: %v/%v", seed, err, nd.Err)
					}
					ndGot := racyFields(nd)
					for _, want := range e.fields {
						if !ndGot[want] {
							t.Errorf("seed %d: NoDominators misses %s too, reported %v", seed, want, keys(ndGot))
						}
					}
				default:
					for _, want := range e.fields {
						if !got[want] {
							t.Errorf("seed %d: expected race on %s, reported %v", seed, want, keys(got))
						}
					}
				}
			}
		})
	}
}

// TestCorpusConfigStability checks the §7.2 claim over the corpus:
// NoStatic/NoCache/Packed must match Full exactly; NoDominators must
// report a superset (it can recover races the compile-time
// weaker-than × ownership interaction suppresses — see
// unsafe_publish.mj — but never lose one).
func TestCorpusConfigStability(t *testing.T) {
	equalConfigs := []struct {
		name string
		cfg  core.Config
	}{
		{"NoStatic", core.Full().NoStatic()},
		{"NoCache", core.Full().NoCache()},
		{"Packed", func() core.Config { c := core.Full(); c.PackedTrie = true; return c }()},
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			base, err := core.RunSource(e.name+".mj", e.src, core.Full())
			if err != nil || base.Err != nil {
				t.Fatalf("%v/%v", err, base.Err)
			}
			want := racyFields(base)
			for _, c := range equalConfigs {
				res, err := core.RunSource(e.name+".mj", e.src, c.cfg)
				if err != nil || res.Err != nil {
					t.Fatalf("%s: %v/%v", c.name, err, res.Err)
				}
				got := racyFields(res)
				if strings.Join(keys(got), ",") != strings.Join(keys(want), ",") {
					t.Errorf("%s reports %v, Full reports %v", c.name, keys(got), keys(want))
				}
			}
			nd, err := core.RunSource(e.name+".mj", e.src, core.Full().NoDominators())
			if err != nil || nd.Err != nil {
				t.Fatalf("NoDominators: %v/%v", err, nd.Err)
			}
			ndGot := racyFields(nd)
			for f := range want {
				if !ndGot[f] {
					t.Errorf("NoDominators dropped %s that Full reports", f)
				}
			}
		})
	}
}

// TestCorpusOutputsDeterministic pins each program's output under the
// default schedule, catching interpreter regressions.
func TestCorpusOutputsDeterministic(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			r1, err := core.RunSource(e.name+".mj", e.src, core.Full())
			if err != nil || r1.Err != nil {
				t.Fatalf("%v/%v", err, r1.Err)
			}
			r2, err := core.RunSource(e.name+".mj", e.src, core.Full())
			if err != nil || r2.Err != nil {
				t.Fatalf("%v/%v", err, r2.Err)
			}
			if r1.Output != r2.Output {
				t.Errorf("nondeterministic output: %q vs %q", r1.Output, r2.Output)
			}
		})
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
