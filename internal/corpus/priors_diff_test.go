package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/trace"
)

// priorsVariants is the matrix the prior-seeded coverage contract is
// checked over: the adaptive controller with discipline priors on, on
// the serial back end and at bracketing shard counts — all of which
// must run the identical router-side sampling decision procedure —
// plus the inverted-prior ablation, which deliberately points the
// budget at the wrong sites and must still keep stable races thanks to
// the re-arm web.
func priorsVariants(base core.Config) []struct {
	name string
	cfg  core.Config
} {
	var out []struct {
		name string
		cfg  core.Config
	}
	add := func(name string, cfg core.Config) {
		out = append(out, struct {
			name string
			cfg  core.Config
		}{name, cfg})
	}
	on := base
	on.SampleK = 2
	on.SampleBudget = 0.25
	on.Priors = "on"
	add("priors=on", on)
	for _, shards := range []int{1, 2, 8} {
		c := on
		c.Shards = shards
		add(fmt.Sprintf("priors=on,shards=%d", shards), c)
	}
	inv := on
	inv.Priors = "invert"
	add("priors=invert", inv)
	return out
}

// TestCorpusPriorsKeepCoverage is the coverage differential for
// prior-seeded sampling: on every corpus program, under ten harness
// seeds, every priors variant must report exactly the racy-field set
// of the unsampled Full run — priors redirect the sampling budget,
// they must never change the verdict. The sharded variants must
// additionally match the serial priors run byte for byte.
func TestCorpusPriorsKeepCoverage(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				base, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if base.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, base.Err)
				}
				want := racyFields(base)

				var serial string
				for _, v := range priorsVariants(core.Full().WithSeed(seed)) {
					res, err := core.RunSource(e.name+".mj", e.src, v.cfg)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d %s: runtime: %v", seed, v.name, res.Err)
					}
					got := racyFields(res)
					for f := range got {
						if !want[f] {
							t.Errorf("seed %d %s: priors run invented a race on %s (unsampled reported %v)",
								seed, v.name, f, keys(want))
						}
					}
					for f := range want {
						if !got[f] {
							t.Errorf("seed %d %s: priors run lost the stable race on %s (reported %v)",
								seed, v.name, f, keys(got))
						}
					}
					ds := res.DetectorStats
					if ds.Accesses != ds.Shipped+ds.CacheHits+ds.OwnerSkips+ds.Sample.Suppressed {
						t.Errorf("seed %d %s: accounting broken: %d observed != %d shipped + %d cache + %d owner + %d suppressed",
							seed, v.name, ds.Accesses, ds.Shipped, ds.CacheHits, ds.OwnerSkips, ds.Sample.Suppressed)
					}
					if v.name == "priors=on" {
						serial = renderReports(res)
					} else if v.cfg.Shards > 0 {
						if g := renderReports(res); g != serial {
							t.Errorf("seed %d %s diverges from serial priors run:\n--- serial ---\n%s\n--- %s ---\n%s",
								seed, v.name, serial, v.name, g)
						}
					}
				}
			}
		})
	}
}

// TestCorpusPriorsReplayMatchesLive pins that priors live in the
// detector's sampling filter, never the recorder: a trace recorded
// with sampling off replayed with priors on reproduces a live
// priors-on run byte for byte, serial and sharded. Replay has no
// compiled pipeline to derive priors from, so the test carries them
// explicitly via Config.SitePriors — the same hand-off a daemon replay
// job performs.
func TestCorpusPriorsReplayMatchesLive(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()

			// One compile supplies the discipline priors for every
			// replay below (the tier map is schedule-independent).
			pipe, err := core.Compile(e.name+".mj", e.src, core.Full())
			if err != nil {
				t.Fatal(err)
			}
			priors := pipe.SitePriors()

			for seed := int64(0); seed < seeds; seed++ {
				var buf bytes.Buffer
				rec := core.Full().WithSeed(seed)
				rec.TraceTo = &buf
				live, err := core.RunSource(e.name+".mj", e.src, rec)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if live.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, live.Err)
				}

				sampled := core.Full().WithSeed(seed)
				sampled.SampleK = 2
				sampled.SampleBudget = 0.25
				sampled.Priors = "on"
				ref, err := core.RunSource(e.name+".mj", e.src, sampled)
				if err != nil || ref.Err != nil {
					t.Fatalf("seed %d live priors: %v/%v", seed, err, ref.Err)
				}
				want := renderReports(ref)

				rd, err := trace.NewReader(buf.Bytes())
				if err != nil {
					t.Fatalf("seed %d: reading trace: %v", seed, err)
				}
				for _, v := range []struct {
					name   string
					shards int
				}{{"serial", 0}, {"shards=2", 2}} {
					cfg := sampled
					cfg.Shards = v.shards
					cfg.SitePriors = priors
					res, err := core.ReplayTrace(rd, cfg, 1)
					if err != nil {
						t.Fatalf("seed %d replay %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d replay %s: runtime: %v", seed, v.name, res.Err)
					}
					if got := renderReports(res); got != want {
						t.Errorf("seed %d priors replay (%s) diverges from live:\n--- live ---\n%s\n--- replay ---\n%s",
							seed, v.name, want, got)
					}
				}
			}
		})
	}
}

// TestDisciplineReportDeterministic pins the byte-stability contract
// of the ranked lock-discipline report: two cold compiles agree, and a
// warm fact-cache compile (every function replayed from the cache)
// reproduces the cold report byte for byte.
func TestDisciplineReportDeterministic(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			p1, err := core.Compile(e.name+".mj", e.src, core.Full())
			if err != nil {
				t.Fatal(err)
			}
			p2, err := core.Compile(e.name+".mj", e.src, core.Full())
			if err != nil {
				t.Fatal(err)
			}
			cold := p1.DisciplineReport()
			if cold != p2.DisciplineReport() {
				t.Errorf("discipline report differs across cold compiles:\n--- first ---\n%s\n--- second ---\n%s",
					cold, p2.DisciplineReport())
			}

			dir := t.TempDir()
			cfg := core.Full()
			cfg.FactCacheDir = dir
			seed, err := core.Compile(e.name+".mj", e.src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := seed.DisciplineReport(); got != cold {
				t.Errorf("cache-seeding compile diverges from cold:\n--- cold ---\n%s\n--- seeding ---\n%s", cold, got)
			}
			warm, err := core.Compile(e.name+".mj", e.src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.CacheStats.ProgramHit && warm.CacheStats.FnHits == 0 {
				t.Fatalf("second compile took no cache hits (misses=%d) — warm path untested", warm.CacheStats.FnMisses)
			}
			if got := warm.DisciplineReport(); got != cold {
				t.Errorf("warm cache compile diverges from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, got)
			}
		})
	}
}
