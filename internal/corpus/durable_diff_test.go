// Crash-recovery differential: for every corpus program under ten
// seeds, a WAL left holding an acknowledged-but-unfinished job (the
// exact state a kill -9 after admission leaves behind) must recover to
// a verdict byte-identical to a clean one-shot racedet run. The
// deterministic scheduler is what makes this equality exact rather
// than statistical — the whole reason recovery can simply re-run.
package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"racedet"
	"racedet/internal/service"
	"racedet/internal/service/durable"
)

// verdict is the canonical comparable form of an analysis: everything
// a client acts on, nothing timing-dependent.
type verdict struct {
	Races           []racedet.Race `json:"races"`
	RacyObjects     int            `json:"racy_objects"`
	BaselineReports []string       `json:"baseline_reports"`
	Output          string         `json:"output"`
}

func canonical(t *testing.T, v verdict) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCorpusRecoveredVerdictsMatchOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full corpus through WAL recovery")
	}
	const seeds = 10
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()

			// Seed one WAL with ten acknowledged jobs (one per seed),
			// none with a result: the post-crash state after the daemon
			// fsync'd every admit and then died.
			dir := t.TempDir()
			st, _, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
			if err != nil {
				t.Fatalf("seeding WAL: %v", err)
			}
			for seed := int64(0); seed < seeds; seed++ {
				req := service.JobRequest{
					File:           e.name + ".mj",
					Source:         e.src,
					Seed:           seed,
					IdempotencyKey: fmt.Sprintf("%s-seed-%d", e.name, seed),
				}
				reqJSON, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Append(durable.Record{
					Kind:    durable.KindAdmit,
					Job:     uint64(seed) + 1,
					Key:     req.IdempotencyKey,
					Request: reqJSON,
				}); err != nil {
					t.Fatalf("seeding admit %d: %v", seed, err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			srv := service.New(service.Options{StateDir: dir})
			rep, err := srv.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if rep.Rerun != seeds {
				t.Fatalf("recovery = %+v, want %d re-runs", rep, seeds)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := &service.Client{Base: ts.URL}

			for seed := int64(0); seed < seeds; seed++ {
				want, err := racedet.Detect(e.name+".mj", e.src, racedet.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d one-shot: %v", seed, err)
				}

				// The client's retry of its lost acknowledgment.
				res, err := client.Analyze(service.JobRequest{
					File:           e.name + ".mj",
					Source:         e.src,
					Seed:           seed,
					IdempotencyKey: fmt.Sprintf("%s-seed-%d", e.name, seed),
				})
				if err != nil {
					t.Fatalf("seed %d resubmit: %v", seed, err)
				}
				if !res.Deduped {
					t.Fatalf("seed %d resubmit re-ran instead of serving the recovered result", seed)
				}
				if res.CompileError != "" || res.RuntimeError != "" || res.Degraded {
					t.Fatalf("seed %d recovered job not clean: %+v", seed, res)
				}

				got := canonical(t, verdict{res.Races, res.RacyObjects, res.BaselineReports, res.Output})
				ref := canonical(t, verdict{want.Races, want.RacyObjects, want.BaselineReports, want.Output})
				if !bytes.Equal(got, ref) {
					t.Errorf("seed %d: recovered verdict not byte-identical to one-shot:\n--- recovered ---\n%s\n--- one-shot ---\n%s",
						seed, got, ref)
				}
			}

			m := srv.Metrics()
			if m.JobsRecovered != seeds || m.JobsDeduped != seeds {
				t.Errorf("jobs_recovered=%d jobs_deduped=%d, want %d/%d",
					m.JobsRecovered, m.JobsDeduped, seeds, seeds)
			}
			if m.Terminal() != m.JobsAdmitted {
				t.Errorf("terminal=%d admitted=%d", m.Terminal(), m.JobsAdmitted)
			}
		})
	}
}
