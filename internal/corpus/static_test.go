package corpus

import (
	"strings"
	"testing"

	"racedet/internal/core"
)

// TestCorpusStaticDeterministic is the repeated-run equality sweep over
// the static passes: compiling the same program three times must yield
// byte-identical -facts reports (every map iteration in racestatic,
// pointsto, and instrument is sorted before it reaches an output).
func TestCorpusStaticDeterministic(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			render := func() string {
				pipe, err := core.Compile(e.name+".mj", e.src, core.Full())
				if err != nil {
					t.Fatal(err)
				}
				return pipe.FactsReport()
			}
			first := render()
			for i := 0; i < 2; i++ {
				if got := render(); got != first {
					t.Fatalf("FactsReport differs between identical compiles:\n--- first ---\n%s\n--- rerun ---\n%s", first, got)
				}
			}
		})
	}
}

// TestCorpusInterprocDifferential pins the §7.2 gamble for the new
// interprocedural elimination: on every corpus program, under ten
// seeds, Full and NoInterproc must report exactly the same racy
// fields. The interprocedural weaker-than may only trim redundant
// trace instructions — if NoInterproc ever caught a race Full misses,
// the elimination would have widened the paper's known missed-race
// set (the way unsafe_publish.mj documents for the intraprocedural
// one), and this test is the alarm.
func TestCorpusInterprocDifferential(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 10; seed++ {
				full, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil || full.Err != nil {
					t.Fatalf("seed %d full: %v/%v", seed, err, full.Err)
				}
				noip, err := core.RunSource(e.name+".mj", e.src, core.Full().NoInterproc().WithSeed(seed))
				if err != nil || noip.Err != nil {
					t.Fatalf("seed %d nointerproc: %v/%v", seed, err, noip.Err)
				}
				f := strings.Join(keys(racyFields(full)), ",")
				n := strings.Join(keys(racyFields(noip)), ",")
				if f != n {
					t.Errorf("seed %d: interprocedural elimination changed the verdict: Full=[%s] NoInterproc=[%s]",
						seed, f, n)
				}
			}
		})
	}
}

// TestCorpusFactCacheWarmIdentical is the corpus half of the fact
// cache's contract: for every program and ten seeds, the plain run,
// the cache-populating cold run, and the cache-replaying warm run
// produce byte-identical race reports and program output.
func TestCorpusFactCacheWarmIdentical(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cached := func(seed int64) core.Config {
				cfg := core.Full().WithSeed(seed)
				cfg.FactCacheDir = dir
				return cfg
			}
			for seed := int64(0); seed < 10; seed++ {
				plain, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil || plain.Err != nil {
					t.Fatalf("seed %d plain: %v/%v", seed, err, plain.Err)
				}
				want := renderReports(plain) + "\n" + plain.Output
				// Seed 0 populates the cache; every later seed replays it.
				res, err := core.RunSource(e.name+".mj", e.src, cached(seed))
				if err != nil || res.Err != nil {
					t.Fatalf("seed %d cached: %v/%v", seed, err, res.Err)
				}
				if got := renderReports(res) + "\n" + res.Output; got != want {
					t.Errorf("seed %d: cached run diverges from plain:\n--- plain ---\n%s\n--- cached ---\n%s",
						seed, want, got)
				}
			}
			// The replay really is a replay: a fresh compile against the
			// populated directory is a program-level hit.
			pipe, err := core.Compile(e.name+".mj", e.src, cached(0))
			if err != nil {
				t.Fatal(err)
			}
			if !pipe.CacheStats.ProgramHit {
				t.Errorf("warm compile missed the fact cache: %+v", pipe.CacheStats)
			}
		})
	}
}
