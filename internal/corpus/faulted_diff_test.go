package corpus

import (
	"fmt"
	"testing"

	"racedet/internal/bench"
	"racedet/internal/core"
	"racedet/internal/faultinject"
)

// faultedConfig is the supervised sharded configuration the recovery
// differential tests run under: a small journal capacity forces
// frequent checkpoints so replay exercises both the restore path and
// the journal-suffix path, and batching keeps the router realistic.
func faultedConfig(seed int64, faults *faultinject.Plan) core.Config {
	cfg := core.Full().WithSeed(seed)
	cfg.Shards = 4
	cfg.BatchSize = 16
	cfg.JournalCap = 64
	cfg.RetryBudget = 3
	cfg.Faults = faults
	return cfg
}

// panicPlan builds a wildcard-shard panic at a seed-chosen event index
// in [1, ceil(trieEvents/shards)]. Workers only ever see the accesses
// that survive the router's cache and ownership filters — exactly the
// serial trie's event stream — so the pigeonhole runs over serial
// Trie.Events: with four shards splitting that many events, the
// busiest shard processes at least the chosen index, and the panic is
// guaranteed to fire on every seed while the seed sweep still covers
// arbitrary points of the stream. expectFire is false only when the
// serial run forwarded nothing to the trie (then no worker event can
// ever fire and the callers skip the firing assertions).
func panicPlan(t *testing.T, seed int64, trieEvents uint64) (plan *faultinject.Plan, expectFire bool) {
	t.Helper()
	limit := (trieEvents + 3) / 4
	if limit < 1 {
		limit = 1
	}
	ev := 1 + (uint64(seed)*7919)%limit
	plan, err := faultinject.Parse(fmt.Sprintf("panic:shard=*,event=%d", ev))
	if err != nil {
		t.Fatalf("panic plan: %v", err)
	}
	return plan, trieEvents > 0
}

// TestCorpusFaultInjectedMatchesSerial is the recovery differential
// test: on every corpus program, under ten seeds, a worker panic at a
// seed-chosen event index must be invisible in the output — the
// supervisor restarts the worker, replays the journal suffix, and the
// merged report stays byte-identical to the serial back end's.
func TestCorpusFaultInjectedMatchesSerial(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 10; seed++ {
				serial, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if serial.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, serial.Err)
				}
				want := renderReports(serial)

				plan, expectFire := panicPlan(t, seed, serial.DetectorStats.Trie.Events)
				res, err := core.RunSource(e.name+".mj", e.src, faultedConfig(seed, plan))
				if err != nil {
					t.Fatalf("seed %d faulted: %v", seed, err)
				}
				if res.Err != nil {
					t.Fatalf("seed %d faulted: runtime: %v", seed, res.Err)
				}
				if got := renderReports(res); got != want {
					t.Errorf("seed %d: faulted run diverges from serial:\n--- serial ---\n%s\n--- faulted ---\n%s",
						seed, want, got)
				}
				if !expectFire {
					continue
				}
				if plan.Fired() == 0 {
					t.Fatalf("seed %d: injected panic never fired (event index past the busiest shard)", seed)
				}
				rec := res.DetectorStats.Recovery
				if rec.Restarts == 0 {
					t.Errorf("seed %d: panic fired but no worker restart recorded", seed)
				}
				if rec.Replayed == 0 {
					t.Errorf("seed %d: worker restarted without replaying the journal", seed)
				}
				if rec.DegradedShards != 0 {
					t.Errorf("seed %d: shard degraded with retry budget 3: %+v", seed, rec)
				}
			}
		})
	}
}

// TestBenchmarksFaultInjectedMatchesSerial extends the recovery
// differential check to the five paper benchmarks, whose much longer
// event streams land panics deep into checkpointed history.
func TestBenchmarksFaultInjectedMatchesSerial(t *testing.T) {
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source()
			for _, seed := range seeds {
				serial, err := core.RunSource(b.Name+".mj", src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if serial.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, serial.Err)
				}
				want := renderReports(serial)

				plan, expectFire := panicPlan(t, seed, serial.DetectorStats.Trie.Events)
				res, err := core.RunSource(b.Name+".mj", src, faultedConfig(seed, plan))
				if err != nil {
					t.Fatalf("seed %d faulted: %v", seed, err)
				}
				if res.Err != nil {
					t.Fatalf("seed %d faulted: runtime: %v", seed, res.Err)
				}
				if got := renderReports(res); got != want {
					t.Errorf("seed %d: faulted run diverges from serial (%d vs %d reports)",
						seed, len(res.Reports), len(serial.Reports))
				}
				if !expectFire {
					continue
				}
				if plan.Fired() == 0 {
					t.Fatalf("seed %d: injected panic never fired", seed)
				}
				if res.DetectorStats.Recovery.Restarts == 0 {
					t.Errorf("seed %d: panic fired but no worker restart recorded", seed)
				}
			}
		})
	}
}

// TestCorpusDegradedCompletes pins the never-lose-the-analysis
// guarantee: with a retry budget of zero every fired panic degrades
// its shard to the Eraser lockset path, and the run still completes
// with a report and an honest degradation counter — never an error,
// never a silently missing shard.
func TestCorpusDegradedCompletes(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 10; seed++ {
				serial, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				plan, expectFire := panicPlan(t, seed, serial.DetectorStats.Trie.Events)
				cfg := faultedConfig(seed, plan)
				cfg.RetryBudget = 0
				res, err := core.RunSource(e.name+".mj", e.src, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Err != nil {
					t.Fatalf("seed %d: degraded run must not fail the analysis: %v", seed, res.Err)
				}
				if !expectFire {
					continue
				}
				if plan.Fired() == 0 {
					t.Fatalf("seed %d: injected panic never fired", seed)
				}
				rec := res.DetectorStats.Recovery
				if rec.DegradedShards == 0 {
					t.Errorf("seed %d: panic fired with budget 0 but no shard degraded: %+v", seed, rec)
				}
				if rec.Restarts != 0 {
					t.Errorf("seed %d: budget 0 must not restart, got %d restarts", seed, rec.Restarts)
				}
			}
		})
	}
}
