package corpus

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racedet/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden -facts files under testdata/golden/")

// goldenPrograms are the corpus programs whose mjdump -facts output is
// pinned byte-for-byte, one per §5/§6 kill condition. The condition
// string must appear in the report — so the golden file cannot rot
// into pinning a program where the condition stopped firing.
var goldenPrograms = []struct {
	name      string
	condition string
}{
	{"unsafe_publish", "kill: must-same-thread"},
	{"guarded_lazy_init", "kill: must-common-sync"},
	{"fanin_accumulator", "eliminated interprocedurally"},
	{"inconsistent_guard", "tier: guarded-inconsistent"},
	{"thread_specific_state", "kill: thread-specific field"},
	{"unsafe_start_in_ctor", "note: unsafe thread class"},
}

// TestGoldenFacts compares each pinned program's FactsReport (the
// engine behind mjdump -facts and racedet -explain-static) against the
// checked-in golden file. Regenerate with:
//
//	go test ./internal/corpus/ -run TestGoldenFacts -update
func TestGoldenFacts(t *testing.T) {
	for _, g := range goldenPrograms {
		g := g
		t.Run(g.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", g.name+".mj"))
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := core.Compile(g.name+".mj", string(src), core.Full())
			if err != nil {
				t.Fatal(err)
			}
			got := pipe.FactsReport()
			if !strings.Contains(got, g.condition) {
				t.Errorf("report no longer shows %q — pick a different program for this condition:\n%s", g.condition, got)
			}
			path := filepath.Join("testdata", "golden", g.name+".facts")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("-facts output changed (regenerate with -update if intended):\n--- golden ---\n%s\n--- got ---\n%s", want, got)
			}
		})
	}
}
