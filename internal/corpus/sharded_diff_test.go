package corpus

import (
	"fmt"
	"testing"

	"racedet/internal/bench"
	"racedet/internal/core"
)

// renderReports is the byte-level view of a run's detection outcome:
// the ordered race reports plus the racy-object set. The sharded back
// end's determinism contract is that this string is identical to the
// serial back end's for the same program and seed.
func renderReports(res *core.RunResult) string {
	s := ""
	for _, r := range res.Reports {
		s += r.String() + "\n"
	}
	s += "racy:"
	for _, o := range res.RacyObjects {
		s += " " + o.String()
	}
	return s
}

// shardedVariants is the matrix the equivalence contract is checked
// over: shard counts bracketing the interesting cases (1 = the sharded
// machinery with no parallelism, 2 = minimal partitioning, 8 = more
// shards than corpus threads), plus a batched front end.
func shardedVariants(base core.Config) []struct {
	name string
	cfg  core.Config
} {
	var out []struct {
		name string
		cfg  core.Config
	}
	for _, shards := range []int{1, 2, 8} {
		c := base
		c.Shards = shards
		out = append(out, struct {
			name string
			cfg  core.Config
		}{fmt.Sprintf("shards=%d", shards), c})
	}
	b := base
	b.Shards = 4
	b.BatchSize = 16
	out = append(out, struct {
		name string
		cfg  core.Config
	}{"shards=4,batch=16", b})
	// A deliberately starved ring: depth 1 with tiny batches keeps the
	// SPSC buffers wrapping around and both sides cycling through their
	// park/unpark paths, which is where a lost-wakeup or slot-reuse bug
	// in the ring-backed router would surface as divergence or a hang.
	q := base
	q.Shards = 2
	q.BatchSize = 4
	q.ShardQueueDepth = 1
	out = append(out, struct {
		name string
		cfg  core.Config
	}{"shards=2,batch=4,queue=1", q})
	return out
}

// TestCorpusShardedMatchesSerial is the differential test for the
// sharded back end: on every corpus program, under ten harness seeds,
// every sharded/batched variant must produce exactly the serial back
// end's ordered race reports and racy-object set.
func TestCorpusShardedMatchesSerial(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 10; seed++ {
				serial, err := core.RunSource(e.name+".mj", e.src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if serial.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, serial.Err)
				}
				want := renderReports(serial)
				for _, v := range shardedVariants(core.Full().WithSeed(seed)) {
					res, err := core.RunSource(e.name+".mj", e.src, v.cfg)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d %s: runtime: %v", seed, v.name, res.Err)
					}
					if got := renderReports(res); got != want {
						t.Errorf("seed %d %s diverges from serial:\n--- serial ---\n%s\n--- %s ---\n%s",
							seed, v.name, want, v.name, got)
					}
				}
			}
		})
	}
}

// TestBenchmarksShardedMatchesSerial extends the differential check to
// the five paper benchmarks (Table 1), which are much larger than the
// corpus idioms and exercise the shard router under real load.
func TestBenchmarksShardedMatchesSerial(t *testing.T) {
	seeds := []int64{0, 1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source()
			for _, seed := range seeds {
				serial, err := core.RunSource(b.Name+".mj", src, core.Full().WithSeed(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if serial.Err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, serial.Err)
				}
				want := renderReports(serial)
				for _, v := range shardedVariants(core.Full().WithSeed(seed)) {
					res, err := core.RunSource(b.Name+".mj", src, v.cfg)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, v.name, err)
					}
					if res.Err != nil {
						t.Fatalf("seed %d %s: runtime: %v", seed, v.name, res.Err)
					}
					if got := renderReports(res); got != want {
						t.Errorf("seed %d %s diverges from serial (%d vs %d reports)",
							seed, v.name, len(res.Reports), len(serial.Reports))
					}
				}
			}
		})
	}
}
