package corpus

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"racedet"
	"racedet/internal/faultinject"
	"racedet/internal/service"
)

// TestCorpusFaultedDaemonMatchesOneShot is the service-level recovery
// differential: on every corpus program, under ten seeds, a daemon
// session whose first two attempts are killed by injected panics must
// produce verdicts identical to a clean one-shot racedet run — and a
// concurrent sibling session of the same program must be completely
// unaffected. Retried recovery is allowed to be visible in counters,
// never in verdicts.
func TestCorpusFaultedDaemonMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full corpus through daemon sessions")
	}
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 10; seed++ {
				want, err := racedet.Detect(e.name+".mj", e.src, racedet.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d one-shot: %v", seed, err)
				}

				// Whichever of the two concurrent sessions is admitted
				// first eats both injected panics; the other runs clean.
				plan, err := faultinject.Parse("session-panic:job=1,times=2")
				if err != nil {
					t.Fatal(err)
				}
				srv := service.New(service.Options{
					MaxSessions:  2,
					RetryBudget:  3,
					RetryBackoff: time.Millisecond,
					Faults:       plan,
				})
				ts := httptest.NewServer(srv.Handler())
				client := &service.Client{Base: ts.URL}

				results := make([]*service.JobResult, 2)
				errs := make([]error, 2)
				var wg sync.WaitGroup
				for i := range results {
					wg.Add(1)
					go func() {
						defer wg.Done()
						results[i], errs[i] = client.Analyze(service.JobRequest{
							File:   e.name + ".mj",
							Source: e.src,
							Seed:   seed,
						})
					}()
				}
				wg.Wait()
				ts.Close()

				retries := 0
				for i, res := range results {
					if errs[i] != nil {
						t.Fatalf("seed %d session %d: %v", seed, i, errs[i])
					}
					if res.Degraded {
						t.Fatalf("seed %d session %d degraded with retry budget 3: %+v", seed, i, res)
					}
					if res.CompileError != "" || res.RuntimeError != "" {
						t.Fatalf("seed %d session %d failed: %+v", seed, i, res)
					}
					if !reflect.DeepEqual(res.Races, want.Races) {
						t.Errorf("seed %d session %d: races diverge from one-shot:\n--- one-shot ---\n%+v\n--- daemon ---\n%+v",
							seed, i, want.Races, res.Races)
					}
					if res.Output != want.Output {
						t.Errorf("seed %d session %d: output diverges: got %q want %q",
							seed, i, res.Output, want.Output)
					}
					if res.RacyObjects != want.RacyObjects {
						t.Errorf("seed %d session %d: racy objects = %d, want %d",
							seed, i, res.RacyObjects, want.RacyObjects)
					}
					retries += res.Retries
				}
				if retries != 2 {
					t.Errorf("seed %d: total retries = %d, want 2 (both injected panics contained)", seed, retries)
				}
				m := srv.Metrics()
				if m.SessionPanics != 2 {
					t.Errorf("seed %d: session_panics = %d, want 2", seed, m.SessionPanics)
				}
				if m.JobsCompleted != 2 || m.Terminal() != m.JobsAdmitted {
					t.Errorf("seed %d: completed=%d terminal=%d admitted=%d",
						seed, m.JobsCompleted, m.Terminal(), m.JobsAdmitted)
				}
			}
		})
	}
}
