package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"class":        CLASS,
		"extends":      EXTENDS,
		"static":       STATIC,
		"synchronized": SYNCHRONIZED,
		"void":         VOID,
		"int":          KWINT,
		"boolean":      BOOLEAN,
		"if":           IF,
		"else":         ELSE,
		"while":        WHILE,
		"for":          FOR,
		"return":       RETURN,
		"new":          NEW,
		"this":         THIS,
		"null":         NULL,
		"true":         TRUE,
		"false":        FALSE,
		"break":        BREAK,
		"continue":     CONTINUE,
		"print":        PRINT,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
	for _, lit := range []string{"x", "classes", "Int", "Synchronized", "main"} {
		if got := Lookup(lit); got != IDENT {
			t.Errorf("Lookup(%q) = %v, want IDENT", lit, got)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !CLASS.IsKeyword() || IDENT.IsKeyword() || PLUS.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
	for _, k := range []Kind{IDENT, INT, STRING, CHAR} {
		if !k.IsLiteral() {
			t.Errorf("%v should be a literal", k)
		}
	}
	if PLUS.IsLiteral() || CLASS.IsLiteral() {
		t.Error("IsLiteral misclassifies")
	}
	for _, k := range []Kind{ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment op", k)
		}
	}
	if EQ.IsAssignOp() || INC.IsAssignOp() {
		t.Error("IsAssignOp misclassifies")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < (==,!=) < relational < additive < multiplicative
	chains := [][]Kind{
		{OR, AND, EQ, LT, PLUS, STAR},
		{OR, AND, NEQ, GEQ, MINUS, PERCENT},
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			lo, hi := chain[i-1], chain[i]
			if !(lo.Precedence() < hi.Precedence()) {
				t.Errorf("want %v (%d) < %v (%d)", lo, lo.Precedence(), hi, hi.Precedence())
			}
		}
	}
	if ASSIGN.Precedence() != 0 || CLASS.Precedence() != 0 || NOT.Precedence() != 0 {
		t.Error("non-binary operators must have precedence 0")
	}
	if LT.Precedence() != LEQ.Precedence() || GT.Precedence() != GEQ.Precedence() {
		t.Error("relational operators must share a level")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if got := (Pos{}).String(); got != "-" {
		t.Errorf("zero Pos String = %q", got)
	}
	p := Pos{File: "a.mj", Line: 3, Col: 9}
	if !p.IsValid() {
		t.Error("valid Pos reported invalid")
	}
	if got := p.String(); got != "a.mj:3:9" {
		t.Errorf("Pos String = %q", got)
	}
	q := Pos{Line: 1, Col: 2}
	if got := q.String(); got != "1:2" {
		t.Errorf("file-less Pos String = %q", got)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if got := tok.String(); got != `IDENT("foo")` {
		t.Errorf("Token.String = %q", got)
	}
	tok = Token{Kind: PLUS}
	if got := tok.String(); got != "+" {
		t.Errorf("Token.String = %q", got)
	}
}

func TestKindStringTotal(t *testing.T) {
	// Every kind up to the keyword sentinel must have a name that is
	// not the fallback format.
	for k := ILLEGAL; k < keywordEnd; k++ {
		if k == keywordBegin {
			continue
		}
		s := k.String()
		if s == "" || (len(s) > 4 && s[:4] == "Kind") {
			t.Errorf("kind %d has no name (%q)", int(k), s)
		}
	}
}
