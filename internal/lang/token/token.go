// Package token defines the lexical tokens of the MJ language and
// source-position bookkeeping shared by the lexer, parser, and
// diagnostics throughout the toolchain.
//
// MJ is the small multithreaded object-oriented language used as the
// substrate for the PLDI'02 datarace-detection reproduction. Its token
// set is a subset of Java's: class declarations, fields, methods,
// synchronized methods and blocks, thread start/join, arrays, and the
// usual expression operators.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are kept contiguous so IsKeyword can be a
// range test.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // x, Foo
	INT    // 123
	STRING // "abc"
	CHAR   // 'a'

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	EQ  // ==
	NEQ // !=
	LT  // <
	LEQ // <=
	GT  // >
	GEQ // >=

	AND // &&
	OR  // ||
	NOT // !

	ASSIGN     // =
	PLUSASSIGN // +=
	MINUSASSIGN
	STARASSIGN
	SLASHASSIGN
	INC // ++
	DEC // --

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	DOT      // .
	SEMI     // ;

	keywordBegin
	CLASS
	EXTENDS
	STATIC
	SYNCHRONIZED
	VOID
	KWINT // "int"
	BOOLEAN
	IF
	ELSE
	WHILE
	FOR
	RETURN
	NEW
	THIS
	NULL
	TRUE
	FALSE
	BREAK
	CONTINUE
	PRINT // built-in statement "print(expr);"
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:  "IDENT",
	INT:    "INT",
	STRING: "STRING",
	CHAR:   "CHAR",

	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	PERCENT: "%",

	EQ:  "==",
	NEQ: "!=",
	LT:  "<",
	LEQ: "<=",
	GT:  ">",
	GEQ: ">=",

	AND: "&&",
	OR:  "||",
	NOT: "!",

	ASSIGN:      "=",
	PLUSASSIGN:  "+=",
	MINUSASSIGN: "-=",
	STARASSIGN:  "*=",
	SLASHASSIGN: "/=",
	INC:         "++",
	DEC:         "--",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACKET: "[",
	RBRACKET: "]",
	COMMA:    ",",
	DOT:      ".",
	SEMI:     ";",

	CLASS:        "class",
	EXTENDS:      "extends",
	STATIC:       "static",
	SYNCHRONIZED: "synchronized",
	VOID:         "void",
	KWINT:        "int",
	BOOLEAN:      "boolean",
	IF:           "if",
	ELSE:         "else",
	WHILE:        "while",
	FOR:          "for",
	RETURN:       "return",
	NEW:          "new",
	THIS:         "this",
	NULL:         "null",
	TRUE:         "true",
	FALSE:        "false",
	BREAK:        "break",
	CONTINUE:     "continue",
	PRINT:        "print",
}

// keywords maps source spellings to keyword kinds.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBegin + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for an identifier spelling, or IDENT
// if the spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBegin && k < keywordEnd }

// IsLiteral reports whether the kind carries a literal value.
func (k Kind) IsLiteral() bool {
	return k == IDENT || k == INT || k == STRING || k == CHAR
}

// IsAssignOp reports whether the kind is one of the assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN:
		return true
	}
	return false
}

// Pos is a source position: file name plus 1-based line and column.
// The zero Pos is "no position".
// Line and Col are int32, not int: a Pos is embedded in every
// event.Access flowing through the detector pipeline, and the narrow
// fields shave 8 bytes off each buffered event (int32 comfortably
// covers any real source file).
type Pos struct {
	File string
	Line int32
	Col  int32
}

// IsValid reports whether the position carries location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as file:line:col, omitting empty parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a lexical token: kind, literal spelling, and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary operator precedence for the kind, or 0
// if the kind is not a binary operator. Higher binds tighter.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ:
		return 3
	case LT, LEQ, GT, GEQ:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}
