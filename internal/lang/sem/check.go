package sem

import (
	"fmt"

	"racedet/internal/lang/ast"
	"racedet/internal/lang/token"
)

// Check performs semantic analysis of the parsed program and returns
// the checked Program. On errors the returned ErrorList is non-nil;
// the Program is still returned best-effort for tooling.
func Check(prog *ast.Program) (*Program, error) {
	c := &checker{
		p: &Program{
			AST:         prog,
			Classes:     make(map[string]*Class),
			TypeOf:      make(map[ast.Expr]Type),
			IdentRef:    make(map[*ast.Ident]Ref),
			FieldOf:     make(map[ast.Expr]*Field),
			Callee:      make(map[*ast.CallExpr]*Method),
			CtorOf:      make(map[*ast.NewExpr]*Method),
			ClassOfNew:  make(map[*ast.NewExpr]*Class),
			MethodOfAST: make(map[*ast.MethodDecl]*Method),
		},
	}
	c.declareBuiltins()
	c.collectClasses(prog)
	c.collectMembers(prog)
	c.layoutSlots()
	c.checkBodies(prog)
	c.findMain()
	if len(c.errs) > 0 {
		return c.p, c.errs
	}
	return c.p, nil
}

// MustCheck parses-and-checks known-good programs, panicking on error.
func MustCheck(prog *ast.Program) *Program {
	p, err := Check(prog)
	if err != nil {
		panic(fmt.Sprintf("sem.MustCheck: %v", err))
	}
	return p
}

type checker struct {
	p    *Program
	errs ErrorList

	// Per-method state.
	curClass  *Class
	curMethod *Method
	scopes    []map[string]Type
	loopDepth int
}

const maxErrors = 25

func (c *checker) errorf(pos token.Pos, format string, args ...interface{}) {
	if len(c.errs) < maxErrors {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// declareBuiltins installs the built-in Thread class with start, join,
// and a default empty run.
func (c *checker) declareBuiltins() {
	th := &Class{
		Name:    "Thread",
		Builtin: true,
		Fields:  make(map[string]*Field),
		Methods: make(map[string]*Method),
	}
	th.Methods["start"] = &Method{Class: th, Name: "start", Return: TypVoid, Builtin: BuiltinStart}
	th.Methods["join"] = &Method{Class: th, Name: "join", Return: TypVoid, Builtin: BuiltinJoin}
	th.Methods["run"] = &Method{Class: th, Name: "run", Return: TypVoid, Builtin: BuiltinRunStub}
	c.p.Classes["Thread"] = th
	c.p.Order = append(c.p.Order, th)
}

func (c *checker) collectClasses(prog *ast.Program) {
	for _, cd := range prog.Classes {
		if _, dup := c.p.Classes[cd.Name]; dup {
			c.errorf(cd.Pos(), "duplicate class %s", cd.Name)
			continue
		}
		cl := &Class{
			Name:    cd.Name,
			Decl:    cd,
			Fields:  make(map[string]*Field),
			Methods: make(map[string]*Method),
		}
		c.p.Classes[cd.Name] = cl
		c.p.Order = append(c.p.Order, cl)
	}
	// Resolve superclasses and reject cycles.
	for _, cd := range prog.Classes {
		cl := c.p.Classes[cd.Name]
		if cl == nil || cd.Extends == "" {
			continue
		}
		super, ok := c.p.Classes[cd.Extends]
		if !ok {
			c.errorf(cd.Pos(), "class %s extends undeclared class %s", cd.Name, cd.Extends)
			continue
		}
		cl.Super = super
	}
	for _, cl := range c.p.Order {
		slow, fast := cl, cl
		for fast != nil && fast.Super != nil {
			slow, fast = slow.Super, fast.Super.Super
			if slow == fast {
				c.errorf(cl.Decl.Pos(), "inheritance cycle involving class %s", cl.Name)
				cl.Super = nil
				break
			}
		}
	}
}

// resolveType converts AST type syntax to a semantic type.
func (c *checker) resolveType(t ast.Type) Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case token.KWINT:
			return TypInt
		case token.BOOLEAN:
			return TypBool
		case token.VOID:
			return TypVoid
		}
	case *ast.NamedType:
		if cl, ok := c.p.Classes[t.Name]; ok {
			return &ClassType{Class: cl}
		}
		c.errorf(t.Pos(), "undeclared type %s", t.Name)
		return TypInt
	case *ast.ArrayType:
		return &ArrayType{Elem: c.resolveType(t.Elem)}
	}
	c.errorf(t.Pos(), "invalid type")
	return TypInt
}

func (c *checker) collectMembers(prog *ast.Program) {
	for _, cd := range prog.Classes {
		cl := c.p.Classes[cd.Name]
		if cl == nil || cl.Decl != cd {
			continue
		}
		for _, fd := range cd.Fields {
			if _, dup := cl.Fields[fd.Name]; dup {
				c.errorf(fd.Pos(), "duplicate field %s in class %s", fd.Name, cd.Name)
				continue
			}
			cl.Fields[fd.Name] = &Field{
				Class:  cl,
				Name:   fd.Name,
				Type:   c.resolveType(fd.Type),
				Static: fd.Static,
				Decl:   fd,
			}
		}
		for _, md := range cd.Methods {
			switch md.Name {
			case "wait", "notify", "notifyAll":
				c.errorf(md.Pos(), "cannot define %s: it is a built-in monitor method", md.Name)
				continue
			}
			if _, dup := cl.Methods[md.Name]; dup {
				c.errorf(md.Pos(), "duplicate method %s in class %s (overloading is not supported)", md.Name, cd.Name)
				continue
			}
			m := &Method{
				Class:        cl,
				Name:         md.Name,
				Return:       c.resolveType(md.Return),
				Static:       md.Static,
				Synchronized: md.Synchronized,
				IsCtor:       md.IsCtor,
				Decl:         md,
			}
			for _, p := range md.Params {
				m.Params = append(m.Params, c.resolveType(p.Type))
				m.ParamNames = append(m.ParamNames, p.Name)
			}
			cl.Methods[md.Name] = m
			c.p.MethodOfAST[md] = m
		}
	}
	// Check overrides have matching signatures.
	for _, cl := range c.p.Order {
		if cl.Super == nil {
			continue
		}
		for name, m := range cl.Methods {
			sup := cl.Super.LookupMethod(name)
			if sup == nil || sup.Builtin == BuiltinRunStub {
				continue
			}
			if sup.Builtin != NotBuiltin {
				c.errorf(m.Decl.Pos(), "cannot override built-in Thread.%s", name)
				continue
			}
			if !c.sameSignature(m, sup) {
				c.errorf(m.Decl.Pos(), "override %s.%s changes the signature of %s.%s", cl.Name, name, sup.Class.Name, name)
			}
		}
	}
}

func (c *checker) sameSignature(a, b *Method) bool {
	if !Same(a.Return, b.Return) || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if !Same(a.Params[i], b.Params[i]) {
			return false
		}
	}
	return true
}

// layoutSlots assigns contiguous slot indexes: instance fields across
// the inheritance chain (superclass slots first), statics per class.
func (c *checker) layoutSlots() {
	var layout func(cl *Class)
	done := make(map[*Class]bool)
	layout = func(cl *Class) {
		if done[cl] {
			return
		}
		done[cl] = true
		if cl.Super != nil {
			layout(cl.Super)
			cl.instanceSlots = append(cl.instanceSlots, cl.Super.instanceSlots...)
		}
		// Deterministic order: source declaration order.
		if cl.Decl != nil {
			for _, fd := range cl.Decl.Fields {
				f := cl.Fields[fd.Name]
				if f == nil || f.Decl != fd {
					continue
				}
				if f.Static {
					f.Index = len(cl.staticSlots)
					cl.staticSlots = append(cl.staticSlots, f)
				} else {
					f.Index = len(cl.instanceSlots)
					cl.instanceSlots = append(cl.instanceSlots, f)
				}
			}
		}
	}
	for _, cl := range c.p.Order {
		layout(cl)
	}
}

func (c *checker) findMain() {
	for _, cl := range c.p.Order {
		if m, ok := cl.Methods["main"]; ok && m.Static && len(m.Params) == 0 {
			if c.p.Main != nil {
				c.errorf(m.Decl.Pos(), "multiple static main() methods (%s and %s)", c.p.Main.QualifiedName(), m.QualifiedName())
				continue
			}
			c.p.Main = m
		}
	}
	if c.p.Main == nil {
		pos := token.Pos{}
		if len(c.p.AST.Classes) > 0 {
			pos = c.p.AST.Classes[0].Pos()
		}
		c.errorf(pos, "program has no static main() method")
	}
}

// ---------------------------------------------------------------------------
// Body checking

func (c *checker) checkBodies(prog *ast.Program) {
	for _, cd := range prog.Classes {
		cl := c.p.Classes[cd.Name]
		if cl == nil || cl.Decl != cd {
			continue
		}
		for _, md := range cd.Methods {
			m := c.p.MethodOfAST[md]
			if m == nil {
				continue
			}
			c.checkMethod(cl, m)
		}
	}
}

func (c *checker) checkMethod(cl *Class, m *Method) {
	c.curClass = cl
	c.curMethod = m
	c.scopes = []map[string]Type{{}}
	c.loopDepth = 0
	for i, name := range m.ParamNames {
		if _, dup := c.scopes[0][name]; dup {
			c.errorf(m.Decl.Params[i].Pos(), "duplicate parameter %s", name)
		}
		c.scopes[0][name] = m.Params[i]
	}
	c.checkBlock(m.Decl.Body)
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) declareLocal(pos token.Pos, name string, t Type) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "duplicate local variable %s", name)
	}
	top[name] = t
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s)
	case *ast.VarDeclStmt:
		t := c.resolveType(s.Type)
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			if !AssignableTo(it, t) {
				c.errorf(s.Pos(), "cannot initialize %s %s with %s", t, s.Name, it)
			}
		}
		c.declareLocal(s.Pos(), s.Name, t)
	case *ast.AssignStmt:
		lt := c.checkExpr(s.LHS)
		rt := c.checkExpr(s.RHS)
		if s.Op == token.ASSIGN {
			if !AssignableTo(rt, lt) {
				c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
			}
		} else { // compound: int only
			if !Same(lt, TypInt) || !Same(rt, TypInt) {
				c.errorf(s.Pos(), "operator %s requires int operands, got %s and %s", s.Op, lt, rt)
			}
		}
	case *ast.IncDecStmt:
		lt := c.checkExpr(s.LHS)
		if !Same(lt, TypInt) {
			c.errorf(s.Pos(), "operator %s requires an int operand, got %s", s.Op, lt)
		}
	case *ast.IfStmt:
		ct := c.checkExpr(s.Cond)
		if !Same(ct, TypBool) {
			c.errorf(s.Cond.Pos(), "if condition must be boolean, got %s", ct)
		}
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		ct := c.checkExpr(s.Cond)
		if !Same(ct, TypBool) {
			c.errorf(s.Cond.Pos(), "while condition must be boolean, got %s", ct)
		}
		c.loopDepth++
		c.checkBlock(s.Body)
		c.loopDepth--
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			ct := c.checkExpr(s.Cond)
			if !Same(ct, TypBool) {
				c.errorf(s.Cond.Pos(), "for condition must be boolean, got %s", ct)
			}
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loopDepth++
		c.checkBlock(s.Body)
		c.loopDepth--
		c.popScope()
	case *ast.ReturnStmt:
		want := c.curMethod.Return
		if s.Value == nil {
			if !Same(want, TypVoid) {
				c.errorf(s.Pos(), "missing return value in %s (want %s)", c.curMethod.QualifiedName(), want)
			}
			return
		}
		got := c.checkExpr(s.Value)
		if Same(want, TypVoid) {
			c.errorf(s.Pos(), "void method %s returns a value", c.curMethod.QualifiedName())
		} else if !AssignableTo(got, want) {
			c.errorf(s.Pos(), "cannot return %s from %s (want %s)", got, c.curMethod.QualifiedName(), want)
		}
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.SyncStmt:
		lt := c.checkExpr(s.Lock)
		if !IsRef(lt) {
			c.errorf(s.Lock.Pos(), "synchronized requires a reference, got %s", lt)
		}
		c.checkBlock(s.Body)
	case *ast.PrintStmt:
		t := c.checkExpr(s.Value)
		switch {
		case Same(t, TypInt), Same(t, TypBool), Same(t, TypString):
		default:
			c.errorf(s.Pos(), "print requires int, boolean, or string, got %s", t)
		}
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

// checkExpr type-checks e, records its type, and returns it.
func (c *checker) checkExpr(e ast.Expr) Type {
	t := c.exprType(e)
	c.p.TypeOf[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return TypInt
	case *ast.BoolLit:
		return TypBool
	case *ast.StringLit:
		return TypString
	case *ast.NullLit:
		return TypNull
	case *ast.ThisExpr:
		if c.curMethod.Static {
			c.errorf(e.Pos(), "this used in static method %s", c.curMethod.QualifiedName())
		}
		return &ClassType{Class: c.curClass}
	case *ast.Ident:
		return c.identType(e)
	case *ast.FieldAccess:
		return c.fieldAccessType(e)
	case *ast.IndexExpr:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Index)
		if !Same(it, TypInt) {
			c.errorf(e.Index.Pos(), "array index must be int, got %s", it)
		}
		at, ok := xt.(*ArrayType)
		if !ok {
			c.errorf(e.Pos(), "indexing non-array type %s", xt)
			return TypInt
		}
		return at.Elem
	case *ast.LenExpr:
		xt := c.checkExpr(e.X)
		if _, ok := xt.(*ArrayType); !ok {
			c.errorf(e.Pos(), ".length on non-array type %s", xt)
		}
		return TypInt
	case *ast.CallExpr:
		return c.callType(e)
	case *ast.NewExpr:
		return c.newType(e)
	case *ast.NewArrayExpr:
		lt := c.checkExpr(e.Len)
		if !Same(lt, TypInt) {
			c.errorf(e.Len.Pos(), "array length must be int, got %s", lt)
		}
		return &ArrayType{Elem: c.resolveType(e.Elem)}
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case token.MINUS:
			if !Same(xt, TypInt) {
				c.errorf(e.Pos(), "unary - requires int, got %s", xt)
			}
			return TypInt
		case token.NOT:
			if !Same(xt, TypBool) {
				c.errorf(e.Pos(), "! requires boolean, got %s", xt)
			}
			return TypBool
		}
		c.errorf(e.Pos(), "invalid unary operator %s", e.Op)
		return TypInt
	case *ast.BinaryExpr:
		return c.binaryType(e)
	}
	c.errorf(e.Pos(), "unhandled expression %T", e)
	return TypInt
}

func (c *checker) identType(e *ast.Ident) Type {
	if t, ok := c.lookupLocal(e.Name); ok {
		c.p.IdentRef[e] = Ref{Kind: RefLocal}
		return t
	}
	// Field of the enclosing class (instance via implicit this, or
	// static).
	if f := c.curClass.LookupField(e.Name); f != nil {
		if !f.Static && c.curMethod.Static {
			c.errorf(e.Pos(), "instance field %s used in static method %s", f.QualifiedName(), c.curMethod.QualifiedName())
		}
		c.p.IdentRef[e] = Ref{Kind: RefField, Field: f}
		c.p.FieldOf[e] = f
		return f.Type
	}
	if cl, ok := c.p.Classes[e.Name]; ok {
		c.p.IdentRef[e] = Ref{Kind: RefClass, Class: cl}
		// A bare class name has no value type; it only qualifies
		// static members. Give it the class type so FieldAccess can
		// detect the static case via IdentRef.
		return &ClassType{Class: cl}
	}
	c.errorf(e.Pos(), "undeclared identifier %s", e.Name)
	c.p.IdentRef[e] = Ref{Kind: RefLocal}
	return TypInt
}

func (c *checker) fieldAccessType(e *ast.FieldAccess) Type {
	// Static access: Class.field
	if id, ok := e.X.(*ast.Ident); ok {
		if _, isLocal := c.lookupLocal(id.Name); !isLocal && c.curClass.LookupField(id.Name) == nil {
			if cl, isClass := c.p.Classes[id.Name]; isClass {
				c.checkExpr(e.X) // record the RefClass annotation
				f := cl.LookupField(e.Field)
				if f == nil {
					c.errorf(e.Pos(), "class %s has no field %s", cl.Name, e.Field)
					return TypInt
				}
				if !f.Static {
					c.errorf(e.Pos(), "field %s is not static", f.QualifiedName())
				}
				c.p.FieldOf[e] = f
				return f.Type
			}
		}
	}
	xt := c.checkExpr(e.X)
	ct, ok := xt.(*ClassType)
	if !ok {
		c.errorf(e.Pos(), "field access on non-class type %s", xt)
		return TypInt
	}
	f := ct.Class.LookupField(e.Field)
	if f == nil {
		c.errorf(e.Pos(), "class %s has no field %s", ct.Class.Name, e.Field)
		return TypInt
	}
	if f.Static {
		c.errorf(e.Pos(), "static field %s accessed through an instance", f.QualifiedName())
	}
	c.p.FieldOf[e] = f
	return f.Type
}

// monitorBuiltin returns the built-in monitor-condition method for
// wait/notify/notifyAll calls; they exist on every object.
func monitorBuiltin(name string, recv *Class) *Method {
	var kind BuiltinKind
	switch name {
	case "wait":
		kind = BuiltinWait
	case "notify":
		kind = BuiltinNotify
	case "notifyAll":
		kind = BuiltinNotifyAll
	default:
		return nil
	}
	return &Method{Class: recv, Name: name, Return: TypVoid, Builtin: kind}
}

func (c *checker) callType(e *ast.CallExpr) Type {
	var m *Method
	switch {
	case e.Recv == nil:
		m = c.curClass.LookupMethod(e.Method)
		if m == nil {
			m = monitorBuiltin(e.Method, c.curClass)
		}
		if m == nil {
			c.errorf(e.Pos(), "class %s has no method %s", c.curClass.Name, e.Method)
			return TypInt
		}
		if !m.Static && c.curMethod.Static {
			c.errorf(e.Pos(), "instance method %s called from static method %s", m.QualifiedName(), c.curMethod.QualifiedName())
		}
	default:
		// Static call: Class.method(...)
		if id, ok := e.Recv.(*ast.Ident); ok {
			if _, isLocal := c.lookupLocal(id.Name); !isLocal && c.curClass.LookupField(id.Name) == nil {
				if cl, isClass := c.p.Classes[id.Name]; isClass {
					c.checkExpr(e.Recv)
					m = cl.LookupMethod(e.Method)
					if m == nil {
						c.errorf(e.Pos(), "class %s has no method %s", cl.Name, e.Method)
						return TypInt
					}
					if !m.Static {
						c.errorf(e.Pos(), "instance method %s called through class name", m.QualifiedName())
					}
					break
				}
			}
		}
		rt := c.checkExpr(e.Recv)
		ct, ok := rt.(*ClassType)
		if !ok {
			c.errorf(e.Pos(), "method call on non-class type %s", rt)
			return TypInt
		}
		m = ct.Class.LookupMethod(e.Method)
		if m == nil {
			m = monitorBuiltin(e.Method, ct.Class)
		}
		if m == nil {
			c.errorf(e.Pos(), "class %s has no method %s", ct.Class.Name, e.Method)
			return TypInt
		}
		if m.Static {
			c.errorf(e.Pos(), "static method %s called through an instance", m.QualifiedName())
		}
	}
	if m.IsCtor {
		c.errorf(e.Pos(), "constructor %s cannot be called directly", m.QualifiedName())
	}
	if len(e.Args) != len(m.Params) {
		c.errorf(e.Pos(), "call to %s has %d arguments, want %d", m.QualifiedName(), len(e.Args), len(m.Params))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(m.Params) && !AssignableTo(at, m.Params[i]) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, m.QualifiedName(), at, m.Params[i])
		}
	}
	c.p.Callee[e] = m
	return m.Return
}

func (c *checker) newType(e *ast.NewExpr) Type {
	cl, ok := c.p.Classes[e.Class]
	if !ok {
		c.errorf(e.Pos(), "new of undeclared class %s", e.Class)
		return TypNull
	}
	if cl.Builtin && cl.Name == "Thread" {
		c.errorf(e.Pos(), "cannot instantiate Thread directly; extend it")
	}
	c.p.ClassOfNew[e] = cl
	ctor := cl.Methods[cl.Name]
	if ctor == nil || !ctor.IsCtor {
		ctor = nil
	}
	if ctor == nil {
		if len(e.Args) != 0 {
			c.errorf(e.Pos(), "class %s has no constructor but new has %d arguments", cl.Name, len(e.Args))
		}
	} else {
		if len(e.Args) != len(ctor.Params) {
			c.errorf(e.Pos(), "constructor %s has %d parameters, call passes %d", ctor.QualifiedName(), len(ctor.Params), len(e.Args))
		}
		c.p.CtorOf[e] = ctor
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if ctor != nil && i < len(ctor.Params) && !AssignableTo(at, ctor.Params[i]) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, ctor.QualifiedName(), at, ctor.Params[i])
		}
	}
	return &ClassType{Class: cl}
}

func (c *checker) binaryType(e *ast.BinaryExpr) Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if !Same(xt, TypInt) || !Same(yt, TypInt) {
			c.errorf(e.Pos(), "operator %s requires int operands, got %s and %s", e.Op, xt, yt)
		}
		return TypInt
	case token.LT, token.LEQ, token.GT, token.GEQ:
		if !Same(xt, TypInt) || !Same(yt, TypInt) {
			c.errorf(e.Pos(), "operator %s requires int operands, got %s and %s", e.Op, xt, yt)
		}
		return TypBool
	case token.EQ, token.NEQ:
		ok := Same(xt, yt) ||
			(IsRef(xt) && IsRef(yt)) // reference comparison incl. null
		if !ok {
			c.errorf(e.Pos(), "operator %s cannot compare %s and %s", e.Op, xt, yt)
		}
		return TypBool
	case token.AND, token.OR:
		if !Same(xt, TypBool) || !Same(yt, TypBool) {
			c.errorf(e.Pos(), "operator %s requires boolean operands, got %s and %s", e.Op, xt, yt)
		}
		return TypBool
	}
	c.errorf(e.Pos(), "invalid binary operator %s", e.Op)
	return TypInt
}
