package sem

import (
	"strings"
	"testing"

	"racedet/internal/lang/parser"
)

func check(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("no error; want one containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

const okProgram = `
class Animal {
    int legs;
    Animal(int l) { legs = l; }
    int speak() { return legs; }
}
class Dog extends Animal {
    Dog() { legs = 4; }
    int speak() { return legs * 2; }
}
class Main {
    static Animal pet;
    static void main() {
        pet = new Dog();
        print(pet.speak());
    }
}`

func TestCheckOK(t *testing.T) {
	p := check(t, okProgram)
	if p.Main == nil || p.Main.QualifiedName() != "Main.main" {
		t.Fatalf("main = %v", p.Main)
	}
	dog := p.Classes["Dog"]
	animal := p.Classes["Animal"]
	if dog.Super != animal {
		t.Error("Dog.Super != Animal")
	}
	if !dog.IsSubclassOf(animal) || animal.IsSubclassOf(dog) {
		t.Error("IsSubclassOf wrong")
	}
	if f := dog.LookupField("legs"); f == nil || f.Class != animal {
		t.Error("field lookup through superclass failed")
	}
	if m := dog.ResolveOverride("speak"); m == nil || m.Class != dog {
		t.Error("override resolution failed")
	}
}

func TestThreadBuiltin(t *testing.T) {
	p := check(t, `
class W extends Thread {
    int n;
    void run() { n = 1; }
}
class Main {
    static void main() {
        W w = new W();
        w.start();
        w.join();
    }
}`)
	w := p.Classes["W"]
	if !w.IsThread() {
		t.Fatal("W should be a thread class")
	}
	if p.Classes["Main"].IsThread() {
		t.Fatal("Main is not a thread class")
	}
	start := w.LookupMethod("start")
	if start == nil || start.Builtin != BuiltinStart {
		t.Error("start must resolve to the builtin")
	}
	run := w.ResolveOverride("run")
	if run == nil || run.Builtin != NotBuiltin {
		t.Error("run must resolve to the user override")
	}
}

func TestSlotLayout(t *testing.T) {
	p := check(t, `
class A { int x; int y; static int sx; }
class B extends A { int z; static int sz; }
class Main { static void main() { } }`)
	a, b := p.Classes["A"], p.Classes["B"]
	if n := len(a.InstanceSlots()); n != 2 {
		t.Fatalf("A instance slots = %d", n)
	}
	if n := len(b.InstanceSlots()); n != 3 {
		t.Fatalf("B instance slots = %d (must include inherited)", n)
	}
	// Slot indexes must be unique and superclass-first.
	if b.LookupField("x").Index != 0 || b.LookupField("y").Index != 1 || b.LookupField("z").Index != 2 {
		t.Error("slot indexes not laid out superclass-first")
	}
	if len(a.StaticSlots()) != 1 || len(b.StaticSlots()) != 1 {
		t.Error("static slots per class")
	}
}

func TestTypePredicates(t *testing.T) {
	p := check(t, okProgram)
	animal := &ClassType{Class: p.Classes["Animal"]}
	dog := &ClassType{Class: p.Classes["Dog"]}
	if !AssignableTo(dog, animal) {
		t.Error("Dog must be assignable to Animal")
	}
	if AssignableTo(animal, dog) {
		t.Error("Animal must not be assignable to Dog")
	}
	if !AssignableTo(TypNull, animal) || AssignableTo(TypNull, TypInt) {
		t.Error("null assignability wrong")
	}
	arr := &ArrayType{Elem: TypInt}
	if !Same(arr, &ArrayType{Elem: TypInt}) || Same(arr, &ArrayType{Elem: TypBool}) {
		t.Error("array Same wrong")
	}
	if !IsRef(arr) || IsRef(TypInt) || !IsRef(animal) {
		t.Error("IsRef wrong")
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class A {} class A {} class M { static void main() {} }`, "duplicate class"},
		{`class A extends B {} class M { static void main() {} }`, "undeclared class"},
		{`class A extends A { } class M { static void main() {} }`, "inheritance cycle"},
		{`class A extends B {} class B extends A {} class M { static void main() {} }`, "inheritance cycle"},
		{`class A { int x; int x; } class M { static void main() {} }`, "duplicate field"},
		{`class A { void m() {} void m() {} } class M { static void main() {} }`, "duplicate method"},
		{`class A { void m() {} } class B extends A { int m() { return 1; } } class M { static void main() {} }`, "changes the signature"},
		{`class A { }`, "no static main"},
		{`class M { static void main() { int x = true; } }`, "cannot initialize"},
		{`class M { static void main() { int x = 1; boolean b = x; } }`, "cannot initialize"},
		{`class M { static void main() { if (1) { } } }`, "must be boolean"},
		{`class M { static void main() { while (0) { } } }`, "must be boolean"},
		{`class M { static void main() { int x = 1 + true; } }`, "requires int operands"},
		{`class M { static void main() { boolean b = true + false; } }`, "requires int operands"},
		{`class M { static void main() { print(null); } }`, "print requires"},
		{`class M { static void main() { undeclared = 1; } }`, "undeclared identifier"},
		{`class M { static void main() { int x = y; } }`, "undeclared identifier"},
		{`class M { int f; static void main() { f = 1; } }`, "instance field"},
		{`class M { int m() { return 1; } static void main() { m(); } }`, "instance method"},
		{`class M { static void main() { int x = this.hashCode(); } }`, "this used in static"},
		{`class M { static void main() { return 1; } }`, "void method"},
		{`class M { int m() { return; } static void main() {} }`, "missing return value"},
		{`class M { static void main() { break; } }`, "break outside loop"},
		{`class M { static void main() { continue; } }`, "continue outside loop"},
		{`class M { static void main() { synchronized (1) { } } }`, "requires a reference"},
		{`class M { static void main() { int x = 0; x.f = 1; } }`, "field access on non-class"},
		{`class A { int f; } class M { static void main() { A a = new A(); a.missing = 1; } }`, "has no field"},
		{`class A { } class M { static void main() { A a = new A(); a.m(); } }`, "has no method"},
		{`class A { void m(int x) {} } class M { static void main() { A a = new A(); a.m(); } }`, "arguments"},
		{`class A { void m(int x) {} } class M { static void main() { A a = new A(); a.m(true); } }`, "cannot use"},
		{`class A { } class M { static void main() { A a = new A(1); } }`, "no constructor"},
		{`class M { static void main() { Thread t = new Thread(); } }`, "cannot instantiate Thread"},
		{`class W extends Thread { void start() { } } class M { static void main() {} }`, "cannot override built-in"},
		{`class M { static void main() { int[] a = new int[3]; boolean b = a[0]; } }`, "cannot initialize"},
		{`class M { static void main() { int x = 1; int y = x[0]; } }`, "indexing non-array"},
		{`class M { static void main() { int x = 1; int y = x.length; } }`, ".length on non-array"},
		{`class M { static void main() { int[] a = new int[true]; } }`, "array length must be int"},
		{`class M { static void main() { int[] a = new int[2]; a[true] = 1; } }`, "array index must be int"},
		{`class M { static void main() {} static void main2() {} } class N { static void main() {} }`, "multiple static main"},
		{`class A { int f; } class M { static void main() { int x = A.f; } }`, "is not static"},
		{`class A { static int s; } class M { static void main() { A a = new A(); int x = a.s; } }`, "accessed through an instance"},
		{`class A { A(int x) {} } class M { static void main() { A a = new A(); } }`, "parameters"},
		{`class M { static void main() { boolean b = 1 == true; } }`, "cannot compare"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestStaticAccessForms(t *testing.T) {
	p := check(t, `
class Config {
    static int limit;
    static int get() { return limit; }
}
class Main {
    static void main() {
        Config.limit = 10;
        int x = Config.limit + Config.get();
        print(x);
    }
}`)
	f := p.Classes["Config"].LookupField("limit")
	if f == nil || !f.Static {
		t.Fatal("limit must be a static field")
	}
}

func TestLocalScoping(t *testing.T) {
	// Shadowing in nested blocks is allowed; redeclaring in the same
	// scope is not.
	check(t, `
class M {
    static void main() {
        int x = 1;
        { int y = x; { boolean x = true; print(x); } print(y); }
        print(x);
    }
}`)
	checkErr(t, `
class M {
    static void main() {
        int x = 1;
        int x = 2;
    }
}`, "duplicate local")
	// Locals in a for-init vanish after the loop.
	checkErr(t, `
class M {
    static void main() {
        for (int j = 0; j < 3; j++) { }
        print(j);
    }
}`, "undeclared identifier")
}

func TestRefEqualityWithNull(t *testing.T) {
	check(t, `
class A { }
class M {
    static void main() {
        A a = new A();
        A b = null;
        boolean x = a == b;
        boolean y = a != null;
        boolean z = null == b;
        print(x == y || z);
    }
}`)
}

func TestAnnotationTables(t *testing.T) {
	p := check(t, `
class A {
    int f;
    int get() { return f; }
}
class M {
    static void main() {
        A a = new A();
        a.f = 3;
        print(a.get());
    }
}`)
	// Every call expression should be resolved.
	if len(p.Callee) != 1 {
		t.Errorf("Callee size = %d, want 1", len(p.Callee))
	}
	// FieldOf must be populated for both the qualified access and the
	// unqualified one inside get().
	if len(p.FieldOf) < 2 {
		t.Errorf("FieldOf size = %d, want >= 2", len(p.FieldOf))
	}
	for _, cl := range p.Order {
		if cl.Name == "A" {
			if cl.LookupMethod("get") == nil {
				t.Error("method table missing get")
			}
		}
	}
}
