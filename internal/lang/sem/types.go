// Package sem implements semantic analysis for MJ: class-table
// construction, name resolution, and type checking.
//
// The result of Check is a Program: the class table plus side tables
// that annotate AST nodes with their resolved meaning (expression
// types, identifier references, call targets). Downstream phases —
// lowering, static datarace analysis, instrumentation — consume these
// annotations instead of re-deriving them.
//
// MJ has a built-in Thread class. A class that (transitively) extends
// Thread is startable: its instances support the built-in start() and
// join() methods, and start() runs the instance's run() method in a
// new thread, exactly as the paper's interthread control-flow
// machinery assumes.
package sem

import (
	"fmt"

	"racedet/internal/lang/ast"
	"racedet/internal/lang/token"
)

// Type is the semantic type of an expression or declaration.
type Type interface {
	String() string
	typeMarker()
}

// BasicKind enumerates the primitive MJ types.
type BasicKind int

// Primitive kinds.
const (
	Int BasicKind = iota
	Bool
	Void
	Null   // the type of the null literal; assignable to any reference
	String // string literals, valid only as print operands
)

// Basic is a primitive type.
type Basic struct{ Kind BasicKind }

// ClassType is an instance type of a declared (or built-in) class.
type ClassType struct{ Class *Class }

// ArrayType is a one-dimensional array type.
type ArrayType struct{ Elem Type }

func (*Basic) typeMarker()     {}
func (*ClassType) typeMarker() {}
func (*ArrayType) typeMarker() {}

func (b *Basic) String() string {
	switch b.Kind {
	case Int:
		return "int"
	case Bool:
		return "boolean"
	case Void:
		return "void"
	case Null:
		return "null"
	case String:
		return "String"
	}
	return "?basic?"
}
func (c *ClassType) String() string { return c.Class.Name }
func (a *ArrayType) String() string { return a.Elem.String() + "[]" }

// Canonical primitive type values; compare against these with ==.
var (
	TypInt    = &Basic{Kind: Int}
	TypBool   = &Basic{Kind: Bool}
	TypVoid   = &Basic{Kind: Void}
	TypNull   = &Basic{Kind: Null}
	TypString = &Basic{Kind: String}
)

// IsRef reports whether t is a reference type (class, array, or null).
func IsRef(t Type) bool {
	switch t := t.(type) {
	case *ClassType, *ArrayType:
		return true
	case *Basic:
		return t.Kind == Null
	}
	return false
}

// Same reports structural type identity.
func Same(a, b Type) bool {
	switch a := a.(type) {
	case *Basic:
		b, ok := b.(*Basic)
		return ok && a.Kind == b.Kind
	case *ClassType:
		b, ok := b.(*ClassType)
		return ok && a.Class == b.Class
	case *ArrayType:
		b, ok := b.(*ArrayType)
		return ok && Same(a.Elem, b.Elem)
	}
	return false
}

// AssignableTo reports whether a value of type src may be assigned to
// a destination of type dst (identity, widening to a superclass, or
// null to any reference).
func AssignableTo(src, dst Type) bool {
	if Same(src, dst) {
		return true
	}
	if sb, ok := src.(*Basic); ok && sb.Kind == Null {
		return IsRef(dst)
	}
	sc, ok1 := src.(*ClassType)
	dc, ok2 := dst.(*ClassType)
	if ok1 && ok2 {
		return sc.Class.IsSubclassOf(dc.Class)
	}
	return false
}

// Field is a resolved field declaration.
type Field struct {
	Class  *Class // declaring class
	Name   string
	Type   Type
	Static bool
	Decl   *ast.FieldDecl // nil for built-ins
	Index  int            // slot index among the declaring hierarchy's instance or static fields
}

// QualifiedName renders the field as Class.name for reports.
func (f *Field) QualifiedName() string { return f.Class.Name + "." + f.Name }

// Method is a resolved method declaration.
type Method struct {
	Class        *Class // declaring class
	Name         string
	Params       []Type
	ParamNames   []string
	Return       Type
	Static       bool
	Synchronized bool
	IsCtor       bool
	Builtin      BuiltinKind // non-zero for Thread.start/join/run stubs
	Decl         *ast.MethodDecl
}

// BuiltinKind tags the built-in Thread methods.
type BuiltinKind int

// Built-in method kinds.
const (
	NotBuiltin BuiltinKind = iota
	BuiltinStart
	BuiltinJoin
	BuiltinRunStub // Thread.run's empty default body
	// Monitor condition methods, available on every object like in
	// Java: wait releases the receiver's monitor and sleeps until
	// notified; notify/notifyAll wake waiter(s). The caller must hold
	// the receiver's monitor.
	BuiltinWait
	BuiltinNotify
	BuiltinNotifyAll
)

// QualifiedName renders the method as Class.name for reports.
func (m *Method) QualifiedName() string { return m.Class.Name + "." + m.Name }

// Class is an entry in the class table.
type Class struct {
	Name    string
	Super   *Class // nil for root classes and Thread
	Decl    *ast.ClassDecl
	Builtin bool // true for Thread

	Fields  map[string]*Field  // declared here only
	Methods map[string]*Method // declared here only; overloading is not supported

	// Layout caches.
	instanceSlots []*Field // all instance fields incl. inherited, by Index
	staticSlots   []*Field
}

// IsSubclassOf reports whether c equals or transitively extends d.
func (c *Class) IsSubclassOf(d *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == d {
			return true
		}
	}
	return false
}

// IsThread reports whether instances of c are startable threads.
func (c *Class) IsThread() bool {
	for x := c; x != nil; x = x.Super {
		if x.Builtin && x.Name == "Thread" {
			return true
		}
	}
	return false
}

// LookupField finds a field by name in c or its superclasses.
func (c *Class) LookupField(name string) *Field {
	for x := c; x != nil; x = x.Super {
		if f, ok := x.Fields[name]; ok {
			return f
		}
	}
	return nil
}

// LookupMethod finds a method by name in c or its superclasses
// (i.e. the statically visible member; dynamic dispatch picks the
// most-derived override at runtime).
func (c *Class) LookupMethod(name string) *Method {
	for x := c; x != nil; x = x.Super {
		if m, ok := x.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// ResolveOverride returns the implementation of method name for a
// receiver whose dynamic class is c (the most-derived declaration).
func (c *Class) ResolveOverride(name string) *Method {
	return c.LookupMethod(name)
}

// InstanceSlots returns all instance fields of c including inherited
// ones, ordered by slot index.
func (c *Class) InstanceSlots() []*Field { return c.instanceSlots }

// StaticSlots returns the static fields declared by c, ordered by
// slot index.
func (c *Class) StaticSlots() []*Field { return c.staticSlots }

// RefKind classifies what an identifier refers to.
type RefKind int

// Identifier reference kinds.
const (
	RefLocal RefKind = iota // local variable or parameter
	RefField                // field of implicit this, or static field of the enclosing class
	RefClass                // class name used as a static qualifier
)

// Ref is the resolution of an identifier use.
type Ref struct {
	Kind  RefKind
	Field *Field // for RefField
	Class *Class // for RefClass
}

// Program is the fully checked program: class table + AST annotations.
type Program struct {
	AST     *ast.Program
	Classes map[string]*Class
	Order   []*Class // declaration order, built-ins first

	// Side tables keyed by AST node identity.
	TypeOf      map[ast.Expr]Type
	IdentRef    map[*ast.Ident]Ref
	FieldOf     map[ast.Expr]*Field // for *ast.FieldAccess and field-Idents
	Callee      map[*ast.CallExpr]*Method
	CtorOf      map[*ast.NewExpr]*Method // nil entries mean default init
	ClassOfNew  map[*ast.NewExpr]*Class
	MethodOfAST map[*ast.MethodDecl]*Method

	// Main is the program entry point: a static method main() in some
	// class (conventionally Main).
	Main *Method
}

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []*Error

// Error summarizes the list.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}
