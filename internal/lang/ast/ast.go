// Package ast declares the abstract syntax tree for MJ, the small
// multithreaded object-oriented language that serves as the substrate
// for the PLDI'02 datarace-detection reproduction.
//
// MJ deliberately mirrors the Java subset the paper relies on:
// classes with instance and static fields, methods that may be
// declared synchronized, synchronized blocks, a built-in Thread base
// class with start/join, one-dimensional arrays, and structured
// control flow. The tree is produced by internal/lang/parser, checked
// by internal/lang/sem, and lowered by internal/lower.
package ast

import "racedet/internal/lang/token"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types

// Type is the interface for type syntax nodes.
type Type interface {
	Node
	typeNode()
	String() string
}

// PrimType is a primitive type: int, boolean, or void.
type PrimType struct {
	TokPos token.Pos
	Kind   token.Kind // token.KWINT, token.BOOLEAN, or token.VOID
}

// NamedType is a class type written by name.
type NamedType struct {
	TokPos token.Pos
	Name   string
}

// ArrayType is a one-dimensional array of an element type.
type ArrayType struct {
	Elem Type
}

func (t *PrimType) Pos() token.Pos  { return t.TokPos }
func (t *NamedType) Pos() token.Pos { return t.TokPos }
func (t *ArrayType) Pos() token.Pos { return t.Elem.Pos() }

func (*PrimType) typeNode()  {}
func (*NamedType) typeNode() {}
func (*ArrayType) typeNode() {}

func (t *PrimType) String() string {
	switch t.Kind {
	case token.KWINT:
		return "int"
	case token.BOOLEAN:
		return "boolean"
	case token.VOID:
		return "void"
	}
	return "?prim?"
}
func (t *NamedType) String() string { return t.Name }
func (t *ArrayType) String() string { return t.Elem.String() + "[]" }

// ---------------------------------------------------------------------------
// Declarations

// Program is a whole MJ compilation unit: a list of classes.
type Program struct {
	File    string
	Classes []*ClassDecl
}

// Pos returns the position of the first class, or a zero position.
func (p *Program) Pos() token.Pos {
	if len(p.Classes) > 0 {
		return p.Classes[0].Pos()
	}
	return token.Pos{}
}

// ClassDecl is a class declaration with optional superclass.
type ClassDecl struct {
	TokPos  token.Pos
	Name    string
	Extends string // "" if none; "Thread" makes instances startable
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

func (c *ClassDecl) Pos() token.Pos { return c.TokPos }

// FieldDecl declares one field of a class.
type FieldDecl struct {
	TokPos token.Pos
	Static bool
	Type   Type
	Name   string
}

func (f *FieldDecl) Pos() token.Pos { return f.TokPos }

// Param is a single method parameter.
type Param struct {
	TokPos token.Pos
	Type   Type
	Name   string
}

func (p *Param) Pos() token.Pos { return p.TokPos }

// MethodDecl declares a method or a constructor (IsCtor). A
// constructor is written Java-style: its name equals the class name
// and it has no return type.
type MethodDecl struct {
	TokPos       token.Pos
	Static       bool
	Synchronized bool
	IsCtor       bool
	Return       Type // void for constructors
	Name         string
	Params       []*Param
	Body         *BlockStmt
}

func (m *MethodDecl) Pos() token.Pos { return m.TokPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface for statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct {
	TokPos token.Pos
	Stmts  []Stmt
}

// VarDeclStmt declares a local variable with an optional initializer.
type VarDeclStmt struct {
	TokPos token.Pos
	Type   Type
	Name   string
	Init   Expr // may be nil
}

// AssignStmt assigns to a variable, field, or array element. Op is
// token.ASSIGN or a compound assignment operator.
type AssignStmt struct {
	TokPos token.Pos
	LHS    Expr // *Ident, *FieldAccess, or *IndexExpr
	Op     token.Kind
	RHS    Expr
}

// IncDecStmt is `lhs++;` or `lhs--;`.
type IncDecStmt struct {
	TokPos token.Pos
	LHS    Expr
	Op     token.Kind // token.INC or token.DEC
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	TokPos token.Pos
	Cond   Expr
	Then   *BlockStmt
	Else   Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	TokPos token.Pos
	Cond   Expr
	Body   *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post may be nil; Cond may be
// nil (meaning true).
type ForStmt struct {
	TokPos token.Pos
	Init   Stmt // *VarDeclStmt, *AssignStmt, *IncDecStmt, or nil
	Cond   Expr
	Post   Stmt // *AssignStmt, *IncDecStmt, or nil
	Body   *BlockStmt
}

// ReturnStmt returns from the enclosing method.
type ReturnStmt struct {
	TokPos token.Pos
	Value  Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ TokPos token.Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ TokPos token.Pos }

// ExprStmt evaluates an expression (a call) for its effects.
type ExprStmt struct {
	TokPos token.Pos
	X      Expr
}

// SyncStmt is `synchronized (lock) { ... }`.
type SyncStmt struct {
	TokPos token.Pos
	Lock   Expr
	Body   *BlockStmt
}

// PrintStmt is the built-in `print(expr);` used by benchmarks for
// output; it accepts int, boolean, or string-literal operands.
type PrintStmt struct {
	TokPos token.Pos
	Value  Expr
}

func (s *BlockStmt) Pos() token.Pos    { return s.TokPos }
func (s *VarDeclStmt) Pos() token.Pos  { return s.TokPos }
func (s *AssignStmt) Pos() token.Pos   { return s.TokPos }
func (s *IncDecStmt) Pos() token.Pos   { return s.TokPos }
func (s *IfStmt) Pos() token.Pos       { return s.TokPos }
func (s *WhileStmt) Pos() token.Pos    { return s.TokPos }
func (s *ForStmt) Pos() token.Pos      { return s.TokPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.TokPos }
func (s *BreakStmt) Pos() token.Pos    { return s.TokPos }
func (s *ContinueStmt) Pos() token.Pos { return s.TokPos }
func (s *ExprStmt) Pos() token.Pos     { return s.TokPos }
func (s *SyncStmt) Pos() token.Pos     { return s.TokPos }
func (s *PrintStmt) Pos() token.Pos    { return s.TokPos }

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*SyncStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface for expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal (also used for char literals).
type IntLit struct {
	TokPos token.Pos
	Value  int64
}

// BoolLit is true or false.
type BoolLit struct {
	TokPos token.Pos
	Value  bool
}

// StringLit is a string literal (usable only in print statements).
type StringLit struct {
	TokPos token.Pos
	Value  string
}

// NullLit is the null reference.
type NullLit struct{ TokPos token.Pos }

// ThisExpr is the receiver reference.
type ThisExpr struct{ TokPos token.Pos }

// Ident is a use of a named variable, parameter, field (unqualified),
// or class (as a qualifier for static members).
type Ident struct {
	TokPos token.Pos
	Name   string
}

// FieldAccess is `x.f`. X may be an Ident naming a class for static
// field access; sem resolves which.
type FieldAccess struct {
	X      Expr
	Field  string
	DotPos token.Pos
}

// IndexExpr is `a[i]`.
type IndexExpr struct {
	X     Expr
	Index Expr
}

// CallExpr is a method call. Recv may be nil for an implicit-this or
// same-class-static call; it may also be an Ident naming a class for a
// static call.
type CallExpr struct {
	TokPos token.Pos
	Recv   Expr // may be nil
	Method string
	Args   []Expr
}

// NewExpr allocates a class instance, invoking a constructor if one
// matches the arguments.
type NewExpr struct {
	TokPos token.Pos
	Class  string
	Args   []Expr
}

// NewArrayExpr allocates an array: `new int[n]`, `new C[n]`.
type NewArrayExpr struct {
	TokPos token.Pos
	Elem   Type
	Len    Expr
}

// UnaryExpr is `-x` or `!x`.
type UnaryExpr struct {
	TokPos token.Pos
	Op     token.Kind
	X      Expr
}

// BinaryExpr is a binary operation; && and || short-circuit.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// LenExpr is `a.length` on an array.
type LenExpr struct {
	X      Expr
	DotPos token.Pos
}

func (e *IntLit) Pos() token.Pos       { return e.TokPos }
func (e *BoolLit) Pos() token.Pos      { return e.TokPos }
func (e *StringLit) Pos() token.Pos    { return e.TokPos }
func (e *NullLit) Pos() token.Pos      { return e.TokPos }
func (e *ThisExpr) Pos() token.Pos     { return e.TokPos }
func (e *Ident) Pos() token.Pos        { return e.TokPos }
func (e *FieldAccess) Pos() token.Pos  { return e.X.Pos() }
func (e *IndexExpr) Pos() token.Pos    { return e.X.Pos() }
func (e *CallExpr) Pos() token.Pos     { return e.TokPos }
func (e *NewExpr) Pos() token.Pos      { return e.TokPos }
func (e *NewArrayExpr) Pos() token.Pos { return e.TokPos }
func (e *UnaryExpr) Pos() token.Pos    { return e.TokPos }
func (e *BinaryExpr) Pos() token.Pos   { return e.X.Pos() }
func (e *LenExpr) Pos() token.Pos      { return e.X.Pos() }

func (*IntLit) exprNode()       {}
func (*BoolLit) exprNode()      {}
func (*StringLit) exprNode()    {}
func (*NullLit) exprNode()      {}
func (*ThisExpr) exprNode()     {}
func (*Ident) exprNode()        {}
func (*FieldAccess) exprNode()  {}
func (*IndexExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*NewExpr) exprNode()      {}
func (*NewArrayExpr) exprNode() {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*LenExpr) exprNode()      {}
