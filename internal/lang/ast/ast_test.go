package ast

import (
	"strings"
	"testing"

	"racedet/internal/lang/token"
)

// buildTree constructs a small tree covering every node kind by hand
// (the parser has its own tests; here the AST utilities are exercised
// in isolation).
func buildTree() *Program {
	pos := token.Pos{File: "t.mj", Line: 1, Col: 1}
	intT := &PrimType{TokPos: pos, Kind: token.KWINT}
	boolT := &PrimType{TokPos: pos, Kind: token.BOOLEAN}
	namedT := &NamedType{TokPos: pos, Name: "A"}
	arrT := &ArrayType{Elem: intT}

	body := &BlockStmt{TokPos: pos, Stmts: []Stmt{
		&VarDeclStmt{TokPos: pos, Type: intT, Name: "x", Init: &IntLit{TokPos: pos, Value: 3}},
		&VarDeclStmt{TokPos: pos, Type: boolT, Name: "b"},
		&VarDeclStmt{TokPos: pos, Type: arrT, Name: "a", Init: &NewArrayExpr{TokPos: pos, Elem: intT, Len: &IntLit{TokPos: pos, Value: 4}}},
		&AssignStmt{TokPos: pos, LHS: &Ident{TokPos: pos, Name: "x"}, Op: token.PLUSASSIGN, RHS: &IntLit{TokPos: pos, Value: 1}},
		&IncDecStmt{TokPos: pos, LHS: &Ident{TokPos: pos, Name: "x"}, Op: token.INC},
		&IfStmt{
			TokPos: pos,
			Cond:   &BinaryExpr{X: &Ident{TokPos: pos, Name: "x"}, Op: token.LT, Y: &IntLit{TokPos: pos, Value: 9}},
			Then:   &BlockStmt{TokPos: pos, Stmts: []Stmt{&PrintStmt{TokPos: pos, Value: &StringLit{TokPos: pos, Value: "hi"}}}},
			Else: &IfStmt{
				TokPos: pos,
				Cond:   &UnaryExpr{TokPos: pos, Op: token.NOT, X: &BoolLit{TokPos: pos, Value: true}},
				Then:   &BlockStmt{TokPos: pos},
			},
		},
		&WhileStmt{
			TokPos: pos,
			Cond:   &BoolLit{TokPos: pos, Value: true},
			Body: &BlockStmt{TokPos: pos, Stmts: []Stmt{
				&BreakStmt{TokPos: pos},
				&ContinueStmt{TokPos: pos},
			}},
		},
		&ForStmt{
			TokPos: pos,
			Init:   &VarDeclStmt{TokPos: pos, Type: intT, Name: "i", Init: &IntLit{TokPos: pos, Value: 0}},
			Cond:   &BinaryExpr{X: &Ident{TokPos: pos, Name: "i"}, Op: token.LT, Y: &IntLit{TokPos: pos, Value: 3}},
			Post:   &IncDecStmt{TokPos: pos, LHS: &Ident{TokPos: pos, Name: "i"}, Op: token.INC},
			Body: &BlockStmt{TokPos: pos, Stmts: []Stmt{
				&AssignStmt{
					TokPos: pos,
					LHS:    &IndexExpr{X: &Ident{TokPos: pos, Name: "a"}, Index: &Ident{TokPos: pos, Name: "i"}},
					Op:     token.ASSIGN,
					RHS:    &LenExpr{X: &Ident{TokPos: pos, Name: "a"}, DotPos: pos},
				},
			}},
		},
		&SyncStmt{
			TokPos: pos,
			Lock:   &ThisExpr{TokPos: pos},
			Body: &BlockStmt{TokPos: pos, Stmts: []Stmt{
				&AssignStmt{
					TokPos: pos,
					LHS:    &FieldAccess{X: &ThisExpr{TokPos: pos}, Field: "f", DotPos: pos},
					Op:     token.ASSIGN,
					RHS:    &NullLit{TokPos: pos},
				},
			}},
		},
		&ExprStmt{TokPos: pos, X: &CallExpr{TokPos: pos, Recv: &Ident{TokPos: pos, Name: "o"}, Method: "m", Args: []Expr{
			&NewExpr{TokPos: pos, Class: "A", Args: []Expr{&UnaryExpr{TokPos: pos, Op: token.MINUS, X: &IntLit{TokPos: pos, Value: 2}}}},
		}}},
		&ReturnStmt{TokPos: pos, Value: &Ident{TokPos: pos, Name: "x"}},
	}}

	m := &MethodDecl{
		TokPos: pos, Synchronized: true, Return: intT, Name: "work",
		Params: []*Param{{TokPos: pos, Type: namedT, Name: "o"}},
		Body:   body,
	}
	cls := &ClassDecl{
		TokPos: pos, Name: "A", Extends: "Thread",
		Fields:  []*FieldDecl{{TokPos: pos, Static: true, Type: namedT, Name: "f"}},
		Methods: []*MethodDecl{m},
	}
	return &Program{File: "t.mj", Classes: []*ClassDecl{cls}}
}

func TestWalkVisitsEveryNodeKind(t *testing.T) {
	prog := buildTree()
	kinds := map[string]int{}
	Walk(prog, func(n Node) bool {
		kinds[typeName(n)]++
		return true
	})
	want := []string{
		"*ast.Program", "*ast.ClassDecl", "*ast.FieldDecl", "*ast.MethodDecl", "*ast.Param",
		"*ast.PrimType", "*ast.NamedType", "*ast.ArrayType",
		"*ast.BlockStmt", "*ast.VarDeclStmt", "*ast.AssignStmt", "*ast.IncDecStmt",
		"*ast.IfStmt", "*ast.WhileStmt", "*ast.ForStmt", "*ast.ReturnStmt",
		"*ast.BreakStmt", "*ast.ContinueStmt", "*ast.ExprStmt", "*ast.SyncStmt", "*ast.PrintStmt",
		"*ast.IntLit", "*ast.BoolLit", "*ast.StringLit", "*ast.NullLit", "*ast.ThisExpr",
		"*ast.Ident", "*ast.FieldAccess", "*ast.IndexExpr", "*ast.CallExpr",
		"*ast.NewExpr", "*ast.NewArrayExpr", "*ast.UnaryExpr", "*ast.BinaryExpr", "*ast.LenExpr",
	}
	for _, k := range want {
		if kinds[k] == 0 {
			t.Errorf("Walk never visited %s", k)
		}
	}
}

func typeName(n Node) string {
	switch n.(type) {
	case *Program:
		return "*ast.Program"
	case *ClassDecl:
		return "*ast.ClassDecl"
	case *FieldDecl:
		return "*ast.FieldDecl"
	case *MethodDecl:
		return "*ast.MethodDecl"
	case *Param:
		return "*ast.Param"
	case *PrimType:
		return "*ast.PrimType"
	case *NamedType:
		return "*ast.NamedType"
	case *ArrayType:
		return "*ast.ArrayType"
	case *BlockStmt:
		return "*ast.BlockStmt"
	case *VarDeclStmt:
		return "*ast.VarDeclStmt"
	case *AssignStmt:
		return "*ast.AssignStmt"
	case *IncDecStmt:
		return "*ast.IncDecStmt"
	case *IfStmt:
		return "*ast.IfStmt"
	case *WhileStmt:
		return "*ast.WhileStmt"
	case *ForStmt:
		return "*ast.ForStmt"
	case *ReturnStmt:
		return "*ast.ReturnStmt"
	case *BreakStmt:
		return "*ast.BreakStmt"
	case *ContinueStmt:
		return "*ast.ContinueStmt"
	case *ExprStmt:
		return "*ast.ExprStmt"
	case *SyncStmt:
		return "*ast.SyncStmt"
	case *PrintStmt:
		return "*ast.PrintStmt"
	case *IntLit:
		return "*ast.IntLit"
	case *BoolLit:
		return "*ast.BoolLit"
	case *StringLit:
		return "*ast.StringLit"
	case *NullLit:
		return "*ast.NullLit"
	case *ThisExpr:
		return "*ast.ThisExpr"
	case *Ident:
		return "*ast.Ident"
	case *FieldAccess:
		return "*ast.FieldAccess"
	case *IndexExpr:
		return "*ast.IndexExpr"
	case *CallExpr:
		return "*ast.CallExpr"
	case *NewExpr:
		return "*ast.NewExpr"
	case *NewArrayExpr:
		return "*ast.NewArrayExpr"
	case *UnaryExpr:
		return "*ast.UnaryExpr"
	case *BinaryExpr:
		return "*ast.BinaryExpr"
	case *LenExpr:
		return "*ast.LenExpr"
	}
	return "?"
}

func TestWalkPruning(t *testing.T) {
	prog := buildTree()
	total := 0
	Walk(prog, func(n Node) bool { total++; return true })
	pruned := 0
	Walk(prog, func(n Node) bool {
		pruned++
		_, isMethod := n.(*MethodDecl)
		return !isMethod // skip method bodies
	})
	if pruned >= total {
		t.Errorf("pruned walk (%d) should visit fewer nodes than full walk (%d)", pruned, total)
	}
}

func TestCloneDeepIndependence(t *testing.T) {
	prog := buildTree()
	method := prog.Classes[0].Methods[0]
	clone := CloneBlock(method.Body)

	// Count nodes in both; they must match.
	count := func(n Node) int {
		c := 0
		Walk(n, func(Node) bool { c++; return true })
		return c
	}
	if count(method.Body) != count(clone) {
		t.Fatalf("clone has %d nodes, original %d", count(clone), count(method.Body))
	}

	// No shared statement/expression pointers anywhere.
	seen := map[Node]bool{}
	Walk(method.Body, func(n Node) bool {
		switch n.(type) {
		case Stmt, Expr:
			seen[n] = true
		}
		return true
	})
	Walk(clone, func(n Node) bool {
		switch n.(type) {
		case Stmt, Expr:
			if seen[n] {
				t.Fatalf("clone shares node %T with original", n)
			}
		}
		return true
	})
}

func TestCloneNilHandling(t *testing.T) {
	if CloneStmt(nil) != nil || CloneExpr(nil) != nil || CloneBlock(nil) != nil {
		t.Error("nil must clone to nil")
	}
}

func TestExprStringForms(t *testing.T) {
	pos := token.Pos{Line: 1, Col: 1}
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{TokPos: pos, Value: 42}, "42"},
		{&BoolLit{TokPos: pos, Value: false}, "false"},
		{&StringLit{TokPos: pos, Value: "a\"b"}, `"a\"b"`},
		{&NullLit{TokPos: pos}, "null"},
		{&ThisExpr{TokPos: pos}, "this"},
		{&Ident{TokPos: pos, Name: "v"}, "v"},
		{&FieldAccess{X: &ThisExpr{TokPos: pos}, Field: "f"}, "this.f"},
		{&IndexExpr{X: &Ident{TokPos: pos, Name: "a"}, Index: &IntLit{TokPos: pos, Value: 0}}, "a[0]"},
		{&LenExpr{X: &Ident{TokPos: pos, Name: "a"}}, "a.length"},
		{&CallExpr{TokPos: pos, Method: "m", Args: []Expr{&IntLit{TokPos: pos, Value: 1}}}, "m(1)"},
		{&CallExpr{TokPos: pos, Recv: &Ident{TokPos: pos, Name: "o"}, Method: "m"}, "o.m()"},
		{&NewExpr{TokPos: pos, Class: "A"}, "new A()"},
		{&NewArrayExpr{TokPos: pos, Elem: &PrimType{TokPos: pos, Kind: token.KWINT}, Len: &IntLit{TokPos: pos, Value: 3}}, "new int[3]"},
		{&UnaryExpr{TokPos: pos, Op: token.MINUS, X: &Ident{TokPos: pos, Name: "x"}}, "-x"},
		{
			&BinaryExpr{
				X:  &BinaryExpr{X: &IntLit{TokPos: pos, Value: 1}, Op: token.PLUS, Y: &IntLit{TokPos: pos, Value: 2}},
				Op: token.STAR,
				Y:  &IntLit{TokPos: pos, Value: 3},
			},
			"(1 + 2) * 3",
		},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestProgramString(t *testing.T) {
	prog := buildTree()
	out := prog.String()
	for _, fragment := range []string{
		"class A extends Thread {",
		"static A f;",
		"synchronized int work(A o) {",
		"synchronized (this) {",
		"for (int i = 0; i < 3; i++) {",
		"while (true) {",
		"break;",
		"continue;",
		"return x;",
		`print("hi");`,
	} {
		if !strings.Contains(out, fragment) {
			t.Errorf("rendering missing %q:\n%s", fragment, out)
		}
	}
}

func TestPositions(t *testing.T) {
	prog := buildTree()
	if !prog.Pos().IsValid() {
		t.Error("program position should come from its first class")
	}
	empty := &Program{}
	if empty.Pos().IsValid() {
		t.Error("empty program has no position")
	}
	// Every node type must answer Pos without panicking.
	Walk(prog, func(n Node) bool {
		_ = n.Pos()
		return true
	})
}
