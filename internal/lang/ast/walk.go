package ast

// Visitor is called by Walk for each node; returning false skips the
// node's children.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first preorder,
// invoking v for every node.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		for _, c := range n.Classes {
			Walk(c, v)
		}
	case *ClassDecl:
		for _, f := range n.Fields {
			Walk(f, v)
		}
		for _, m := range n.Methods {
			Walk(m, v)
		}
	case *FieldDecl:
		Walk(n.Type, v)
	case *MethodDecl:
		Walk(n.Return, v)
		for _, p := range n.Params {
			Walk(p, v)
		}
		Walk(n.Body, v)
	case *Param:
		Walk(n.Type, v)

	case *PrimType, *NamedType:
		// leaves
	case *ArrayType:
		Walk(n.Elem, v)

	case *BlockStmt:
		for _, s := range n.Stmts {
			Walk(s, v)
		}
	case *VarDeclStmt:
		Walk(n.Type, v)
		if n.Init != nil {
			Walk(n.Init, v)
		}
	case *AssignStmt:
		Walk(n.LHS, v)
		Walk(n.RHS, v)
	case *IncDecStmt:
		Walk(n.LHS, v)
	case *IfStmt:
		Walk(n.Cond, v)
		Walk(n.Then, v)
		if n.Else != nil {
			Walk(n.Else, v)
		}
	case *WhileStmt:
		Walk(n.Cond, v)
		Walk(n.Body, v)
	case *ForStmt:
		if n.Init != nil {
			Walk(n.Init, v)
		}
		if n.Cond != nil {
			Walk(n.Cond, v)
		}
		if n.Post != nil {
			Walk(n.Post, v)
		}
		Walk(n.Body, v)
	case *ReturnStmt:
		if n.Value != nil {
			Walk(n.Value, v)
		}
	case *BreakStmt, *ContinueStmt:
		// leaves
	case *ExprStmt:
		Walk(n.X, v)
	case *SyncStmt:
		Walk(n.Lock, v)
		Walk(n.Body, v)
	case *PrintStmt:
		Walk(n.Value, v)

	case *IntLit, *BoolLit, *StringLit, *NullLit, *ThisExpr, *Ident:
		// leaves
	case *FieldAccess:
		Walk(n.X, v)
	case *IndexExpr:
		Walk(n.X, v)
		Walk(n.Index, v)
	case *CallExpr:
		if n.Recv != nil {
			Walk(n.Recv, v)
		}
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *NewExpr:
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *NewArrayExpr:
		Walk(n.Elem, v)
		Walk(n.Len, v)
	case *UnaryExpr:
		Walk(n.X, v)
	case *BinaryExpr:
		Walk(n.X, v)
		Walk(n.Y, v)
	case *LenExpr:
		Walk(n.X, v)
	}
}

// CloneStmt returns a deep copy of a statement tree. Loop peeling in
// internal/instrument duplicates loop bodies with it; positions are
// preserved so diagnostics from peeled code still point at the source.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch s := s.(type) {
	case *BlockStmt:
		return CloneBlock(s)
	case *VarDeclStmt:
		return &VarDeclStmt{TokPos: s.TokPos, Type: s.Type, Name: s.Name, Init: CloneExpr(s.Init)}
	case *AssignStmt:
		return &AssignStmt{TokPos: s.TokPos, LHS: CloneExpr(s.LHS), Op: s.Op, RHS: CloneExpr(s.RHS)}
	case *IncDecStmt:
		return &IncDecStmt{TokPos: s.TokPos, LHS: CloneExpr(s.LHS), Op: s.Op}
	case *IfStmt:
		return &IfStmt{TokPos: s.TokPos, Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneStmt(s.Else)}
	case *WhileStmt:
		return &WhileStmt{TokPos: s.TokPos, Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
	case *ForStmt:
		return &ForStmt{TokPos: s.TokPos, Init: CloneStmt(s.Init), Cond: CloneExpr(s.Cond), Post: CloneStmt(s.Post), Body: CloneBlock(s.Body)}
	case *ReturnStmt:
		return &ReturnStmt{TokPos: s.TokPos, Value: CloneExpr(s.Value)}
	case *BreakStmt:
		return &BreakStmt{TokPos: s.TokPos}
	case *ContinueStmt:
		return &ContinueStmt{TokPos: s.TokPos}
	case *ExprStmt:
		return &ExprStmt{TokPos: s.TokPos, X: CloneExpr(s.X)}
	case *SyncStmt:
		return &SyncStmt{TokPos: s.TokPos, Lock: CloneExpr(s.Lock), Body: CloneBlock(s.Body)}
	case *PrintStmt:
		return &PrintStmt{TokPos: s.TokPos, Value: CloneExpr(s.Value)}
	}
	panic("ast.CloneStmt: unknown statement type")
}

// CloneBlock deep-copies a block statement; nil stays nil.
func CloneBlock(b *BlockStmt) *BlockStmt {
	if b == nil {
		return nil
	}
	out := &BlockStmt{TokPos: b.TokPos, Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = CloneStmt(s)
	}
	return out
}

// CloneExpr returns a deep copy of an expression tree; nil stays nil.
// Type nodes are shared (they are immutable after parsing).
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *IntLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *StringLit:
		c := *e
		return &c
	case *NullLit:
		c := *e
		return &c
	case *ThisExpr:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *FieldAccess:
		return &FieldAccess{X: CloneExpr(e.X), Field: e.Field, DotPos: e.DotPos}
	case *IndexExpr:
		return &IndexExpr{X: CloneExpr(e.X), Index: CloneExpr(e.Index)}
	case *CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &CallExpr{TokPos: e.TokPos, Recv: CloneExpr(e.Recv), Method: e.Method, Args: args}
	case *NewExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &NewExpr{TokPos: e.TokPos, Class: e.Class, Args: args}
	case *NewArrayExpr:
		return &NewArrayExpr{TokPos: e.TokPos, Elem: e.Elem, Len: CloneExpr(e.Len)}
	case *UnaryExpr:
		return &UnaryExpr{TokPos: e.TokPos, Op: e.Op, X: CloneExpr(e.X)}
	case *BinaryExpr:
		return &BinaryExpr{X: CloneExpr(e.X), Op: e.Op, Y: CloneExpr(e.Y)}
	case *LenExpr:
		return &LenExpr{X: CloneExpr(e.X), DotPos: e.DotPos}
	}
	panic("ast.CloneExpr: unknown expression type")
}
