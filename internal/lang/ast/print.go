package ast

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a source-like rendering of the program to w. The
// output round-trips through the parser (modulo whitespace), which the
// parser tests exploit.
func Fprint(w io.Writer, p *Program) {
	pr := &printer{w: w}
	for i, c := range p.Classes {
		if i > 0 {
			pr.print("\n")
		}
		pr.class(c)
	}
}

// String renders the program as MJ source text.
func (p *Program) String() string {
	var b strings.Builder
	Fprint(&b, p)
	return b.String()
}

type printer struct {
	w      io.Writer
	indent int
}

func (p *printer) print(format string, args ...interface{}) {
	fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...interface{}) {
	p.print("%s", strings.Repeat("    ", p.indent))
	p.print(format, args...)
	p.print("\n")
}

func (p *printer) class(c *ClassDecl) {
	ext := ""
	if c.Extends != "" {
		ext = " extends " + c.Extends
	}
	p.line("class %s%s {", c.Name, ext)
	p.indent++
	for _, f := range c.Fields {
		mod := ""
		if f.Static {
			mod = "static "
		}
		p.line("%s%s %s;", mod, f.Type, f.Name)
	}
	for _, m := range c.Methods {
		p.method(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) method(m *MethodDecl) {
	var mods []string
	if m.Static {
		mods = append(mods, "static")
	}
	if m.Synchronized {
		mods = append(mods, "synchronized")
	}
	mod := strings.Join(mods, " ")
	if mod != "" {
		mod += " "
	}
	var params []string
	for _, q := range m.Params {
		params = append(params, fmt.Sprintf("%s %s", q.Type, q.Name))
	}
	sig := fmt.Sprintf("%s(%s)", m.Name, strings.Join(params, ", "))
	if m.IsCtor {
		p.line("%s%s {", mod, sig)
	} else {
		p.line("%s%s %s {", mod, m.Return, sig)
	}
	p.indent++
	for _, s := range m.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range s.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarDeclStmt:
		if s.Init != nil {
			p.line("%s %s = %s;", s.Type, s.Name, ExprString(s.Init))
		} else {
			p.line("%s %s;", s.Type, s.Name)
		}
	case *AssignStmt:
		p.line("%s %s %s;", ExprString(s.LHS), s.Op, ExprString(s.RHS))
	case *IncDecStmt:
		p.line("%s%s;", ExprString(s.LHS), s.Op)
	case *IfStmt:
		p.line("if (%s) {", ExprString(s.Cond))
		p.indent++
		for _, inner := range s.Then.Stmts {
			p.stmt(inner)
		}
		p.indent--
		switch e := s.Else.(type) {
		case nil:
			p.line("}")
		case *BlockStmt:
			p.line("} else {")
			p.indent++
			for _, inner := range e.Stmts {
				p.stmt(inner)
			}
			p.indent--
			p.line("}")
		default:
			p.line("} else")
			p.stmt(e)
		}
	case *WhileStmt:
		p.line("while (%s) {", ExprString(s.Cond))
		p.indent++
		for _, inner := range s.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		init, cond, post := "", "", ""
		if s.Init != nil {
			init = inlineStmt(s.Init)
		}
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		if s.Post != nil {
			post = inlineStmt(s.Post)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, inner := range s.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *SyncStmt:
		p.line("synchronized (%s) {", ExprString(s.Lock))
		p.indent++
		for _, inner := range s.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *PrintStmt:
		p.line("print(%s);", ExprString(s.Value))
	default:
		p.line("/* ?stmt %T */", s)
	}
}

// inlineStmt renders a simple statement without trailing semicolon for
// use in for-loop headers.
func inlineStmt(s Stmt) string {
	switch s := s.(type) {
	case *VarDeclStmt:
		if s.Init != nil {
			return fmt.Sprintf("%s %s = %s", s.Type, s.Name, ExprString(s.Init))
		}
		return fmt.Sprintf("%s %s", s.Type, s.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", ExprString(s.LHS), s.Op, ExprString(s.RHS))
	case *IncDecStmt:
		return fmt.Sprintf("%s%s", ExprString(s.LHS), s.Op)
	case *ExprStmt:
		return ExprString(s.X)
	}
	return fmt.Sprintf("?stmt %T", s)
}

// ExprString renders an expression as MJ source text.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *BoolLit:
		return fmt.Sprintf("%t", e.Value)
	case *StringLit:
		return fmt.Sprintf("%q", e.Value)
	case *NullLit:
		return "null"
	case *ThisExpr:
		return "this"
	case *Ident:
		return e.Name
	case *FieldAccess:
		return ExprString(e.X) + "." + e.Field
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(e.X), ExprString(e.Index))
	case *CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, ExprString(a))
		}
		call := fmt.Sprintf("%s(%s)", e.Method, strings.Join(args, ", "))
		if e.Recv != nil {
			return ExprString(e.Recv) + "." + call
		}
		return call
	case *NewExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, ExprString(a))
		}
		return fmt.Sprintf("new %s(%s)", e.Class, strings.Join(args, ", "))
	case *NewArrayExpr:
		// `new int[n][]` style: the length belongs to the outermost
		// dimension, extra dimensions trail.
		base := e.Elem
		dims := ""
		for {
			at, ok := base.(*ArrayType)
			if !ok {
				break
			}
			base = at.Elem
			dims += "[]"
		}
		return fmt.Sprintf("new %s[%s]%s", base, ExprString(e.Len), dims)
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", e.Op, parenthesize(e.X))
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", parenthesize(e.X), e.Op, parenthesize(e.Y))
	case *LenExpr:
		return ExprString(e.X) + ".length"
	}
	return fmt.Sprintf("?expr %T", e)
}

// parenthesize wraps composite subexpressions so the rendering
// re-parses with the same structure regardless of precedence.
func parenthesize(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
