// Package parser implements a recursive-descent parser for MJ.
//
// The grammar (EBNF, ignoring whitespace/comments):
//
//	Program   = { ClassDecl } .
//	ClassDecl = "class" IDENT [ "extends" IDENT ] "{" { Member } "}" .
//	Member    = Field | Method .
//	Field     = [ "static" ] Type IDENT ";" .
//	Method    = { "static" | "synchronized" } ( Type | "void" ) IDENT
//	            "(" [ Params ] ")" Block
//	          | IDENT "(" [ Params ] ")" Block .        // constructor
//	Params    = Type IDENT { "," Type IDENT } .
//	Type      = ( "int" | "boolean" | IDENT ) { "[" "]" } .
//	Block     = "{" { Stmt } "}" .
//	Stmt      = Block | VarDecl | If | While | For | Return | Break
//	          | Continue | Sync | Print | SimpleStmt ";" .
//	Sync      = "synchronized" "(" Expr ")" Block .
//	SimpleStmt = Assign | IncDec | CallExpr .
//
// Expressions use precedence climbing: "||" < "&&" < equality <
// relational < additive < multiplicative < unary < postfix.
package parser

import (
	"fmt"
	"strconv"

	"racedet/internal/lang/ast"
	"racedet/internal/lang/lexer"
	"racedet/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is the collection of errors from a parse.
type ErrorList []*Error

// Error summarizes the list as its first error plus a count.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parse parses src into a Program. file is used in positions. On
// syntax errors it returns a non-nil ErrorList (and a best-effort
// partial tree).
func Parse(file, src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(file, src)}
	p.next()
	prog := p.parseProgram()
	prog.File = file
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse is Parse for known-good sources (tests, embedded
// benchmark programs); it panics on error.
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%s): %v", file, err))
	}
	return prog
}

type parser struct {
	lex   *lexer.Lexer
	tok   token.Token
	queue []token.Token // tokens pushed back by lookahead
	errs  ErrorList
}

const maxErrors = 25

// fetch returns the next token, draining pushed-back tokens first.
func (p *parser) fetch() token.Token {
	if len(p.queue) > 0 {
		t := p.queue[0]
		p.queue = p.queue[1:]
		return t
	}
	return p.lex.Next()
}

func (p *parser) next() { p.tok = p.fetch() }

func (p *parser) errorf(pos token.Pos, format string, args ...interface{}) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// expect consumes a token of the given kind, reporting an error (and
// not consuming) on mismatch. It returns the consumed token.
func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	p.next()
	return t
}

// accept consumes the token if it has the given kind.
func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		if p.tok.Kind != token.CLASS {
			p.errorf(p.tok.Pos, "expected class declaration, found %s", p.tok)
			p.next()
			continue
		}
		prog.Classes = append(prog.Classes, p.parseClass())
	}
	return prog
}

func (p *parser) parseClass() *ast.ClassDecl {
	pos := p.expect(token.CLASS).Pos
	name := p.expect(token.IDENT).Lit
	c := &ast.ClassDecl{TokPos: pos, Name: name}
	if p.accept(token.EXTENDS) {
		c.Extends = p.expect(token.IDENT).Lit
	}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		p.parseMember(c)
	}
	p.expect(token.RBRACE)
	return c
}

// parseMember parses one field or method declaration into c.
func (p *parser) parseMember(c *ast.ClassDecl) {
	pos := p.tok.Pos
	static, synchronized := false, false
	for {
		if p.accept(token.STATIC) {
			static = true
			continue
		}
		if p.accept(token.SYNCHRONIZED) {
			synchronized = true
			continue
		}
		break
	}

	// Constructor: IDENT matching the class name followed by "(".
	if p.tok.Kind == token.IDENT && p.tok.Lit == c.Name {
		// Could still be a field of type <ClassName>; disambiguate by
		// looking at what follows the identifier.
		save := p.tok
		p.next()
		if p.tok.Kind == token.LPAREN {
			m := &ast.MethodDecl{
				TokPos:       pos,
				Static:       static,
				Synchronized: synchronized,
				IsCtor:       true,
				Return:       &ast.PrimType{TokPos: pos, Kind: token.VOID},
				Name:         save.Lit,
			}
			if static {
				p.errorf(pos, "constructor cannot be static")
				m.Static = false
			}
			p.parseMethodRest(m)
			c.Methods = append(c.Methods, m)
			return
		}
		// Not a constructor: it is a type name. Continue as a
		// field/method with NamedType.
		typ := p.parseTypeSuffix(&ast.NamedType{TokPos: save.Pos, Name: save.Lit})
		p.parseFieldOrMethod(c, pos, static, synchronized, typ)
		return
	}

	var typ ast.Type
	switch p.tok.Kind {
	case token.VOID:
		typ = &ast.PrimType{TokPos: p.tok.Pos, Kind: token.VOID}
		p.next()
	default:
		typ = p.parseType()
	}
	p.parseFieldOrMethod(c, pos, static, synchronized, typ)
}

func (p *parser) parseFieldOrMethod(c *ast.ClassDecl, pos token.Pos, static, synchronized bool, typ ast.Type) {
	name := p.expect(token.IDENT).Lit
	if p.tok.Kind == token.LPAREN {
		m := &ast.MethodDecl{
			TokPos:       pos,
			Static:       static,
			Synchronized: synchronized,
			Return:       typ,
			Name:         name,
		}
		p.parseMethodRest(m)
		c.Methods = append(c.Methods, m)
		return
	}
	if synchronized {
		p.errorf(pos, "field %s cannot be synchronized", name)
	}
	if pt, ok := typ.(*ast.PrimType); ok && pt.Kind == token.VOID {
		p.errorf(pos, "field %s cannot have type void", name)
	}
	c.Fields = append(c.Fields, &ast.FieldDecl{TokPos: pos, Static: static, Type: typ, Name: name})
	p.expect(token.SEMI)
}

func (p *parser) parseMethodRest(m *ast.MethodDecl) {
	p.expect(token.LPAREN)
	if p.tok.Kind != token.RPAREN {
		for {
			ppos := p.tok.Pos
			typ := p.parseType()
			name := p.expect(token.IDENT).Lit
			m.Params = append(m.Params, &ast.Param{TokPos: ppos, Type: typ, Name: name})
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	m.Body = p.parseBlock()
}

// parseType parses "int", "boolean", or a class name, followed by any
// number of "[]" suffixes.
func (p *parser) parseType() ast.Type {
	var base ast.Type
	switch p.tok.Kind {
	case token.KWINT:
		base = &ast.PrimType{TokPos: p.tok.Pos, Kind: token.KWINT}
		p.next()
	case token.BOOLEAN:
		base = &ast.PrimType{TokPos: p.tok.Pos, Kind: token.BOOLEAN}
		p.next()
	case token.IDENT:
		base = &ast.NamedType{TokPos: p.tok.Pos, Name: p.tok.Lit}
		p.next()
	default:
		p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
		base = &ast.PrimType{TokPos: p.tok.Pos, Kind: token.KWINT}
		p.next()
	}
	return p.parseTypeSuffix(base)
}

func (p *parser) parseTypeSuffix(base ast.Type) ast.Type {
	for p.tok.Kind == token.LBRACKET {
		p.next()
		p.expect(token.RBRACKET)
		base = &ast.ArrayType{Elem: base}
	}
	return base
}

func (p *parser) parseBlock() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{TokPos: pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		s := &ast.ReturnStmt{TokPos: pos}
		if p.tok.Kind != token.SEMI {
			s.Value = p.parseExpr()
		}
		p.expect(token.SEMI)
		return s
	case token.BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{TokPos: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{TokPos: pos}
	case token.SYNCHRONIZED:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		lock := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlock()
		return &ast.SyncStmt{TokPos: pos, Lock: lock, Body: body}
	case token.PRINT:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		v := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.PrintStmt{TokPos: pos, Value: v}
	case token.KWINT, token.BOOLEAN:
		s := p.parseVarDecl()
		p.expect(token.SEMI)
		return s
	case token.IDENT:
		// Could be a var decl (Type IDENT ...) or a simple statement.
		if p.identStartsVarDecl() {
			s := p.parseVarDecl()
			p.expect(token.SEMI)
			return s
		}
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	case token.SEMI:
		// empty statement: allow and skip
		pos := p.tok.Pos
		p.next()
		return &ast.BlockStmt{TokPos: pos}
	default:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	}
}

// identStartsVarDecl decides whether the current IDENT begins a local
// variable declaration (`T x ...` or `T[] x ...`) rather than an
// expression statement, using two tokens of lookahead. MJ keeps this
// cheap because the only ambiguity is IDENT IDENT vs IDENT <op>.
func (p *parser) identStartsVarDecl() bool {
	t1 := p.fetch()
	if t1.Kind == token.IDENT {
		p.pushback(t1) // "Foo bar" => var decl
		return true
	}
	if t1.Kind == token.LBRACKET {
		t2 := p.fetch()
		p.pushback(t1, t2)
		return t2.Kind == token.RBRACKET // "Foo[] ..." => var decl
	}
	p.pushback(t1)
	return false
}

// pushback returns lookahead tokens to the stream; the current token
// p.tok is untouched.
func (p *parser) pushback(toks ...token.Token) {
	p.queue = append(toks, p.queue...)
}

func (p *parser) parseVarDecl() ast.Stmt {
	pos := p.tok.Pos
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	s := &ast.VarDeclStmt{TokPos: pos, Type: typ, Name: name}
	if p.accept(token.ASSIGN) {
		s.Init = p.parseExpr()
	}
	return s
}

// parseSimpleStmt parses an assignment, inc/dec, or call statement
// (without the trailing semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	pos := p.tok.Pos
	lhs := p.parseExpr()
	switch {
	case p.tok.Kind.IsAssignOp():
		op := p.tok.Kind
		p.next()
		rhs := p.parseExpr()
		if !isLValue(lhs) {
			p.errorf(pos, "cannot assign to %s", ast.ExprString(lhs))
		}
		return &ast.AssignStmt{TokPos: pos, LHS: lhs, Op: op, RHS: rhs}
	case p.tok.Kind == token.INC || p.tok.Kind == token.DEC:
		op := p.tok.Kind
		p.next()
		if !isLValue(lhs) {
			p.errorf(pos, "cannot apply %s to %s", op, ast.ExprString(lhs))
		}
		return &ast.IncDecStmt{TokPos: pos, LHS: lhs, Op: op}
	default:
		if _, ok := lhs.(*ast.CallExpr); !ok {
			if _, ok := lhs.(*ast.NewExpr); !ok {
				p.errorf(pos, "expression %s is not a statement", ast.ExprString(lhs))
			}
		}
		return &ast.ExprStmt{TokPos: pos, X: lhs}
	}
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.FieldAccess, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlockOrStmt()
	s := &ast.IfStmt{TokPos: pos, Cond: cond, Then: then}
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlockOrStmt()
		}
	}
	return s
}

// parseBlockOrStmt accepts either a block or a single statement,
// normalizing to a block.
func (p *parser) parseBlockOrStmt() *ast.BlockStmt {
	if p.tok.Kind == token.LBRACE {
		return p.parseBlock()
	}
	s := p.parseStmt()
	return &ast.BlockStmt{TokPos: s.Pos(), Stmts: []ast.Stmt{s}}
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.expect(token.WHILE).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBlockOrStmt()
	return &ast.WhileStmt{TokPos: pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.expect(token.FOR).Pos
	p.expect(token.LPAREN)
	s := &ast.ForStmt{TokPos: pos}
	if p.tok.Kind != token.SEMI {
		if p.tok.Kind == token.KWINT || p.tok.Kind == token.BOOLEAN ||
			(p.tok.Kind == token.IDENT && p.identStartsVarDecl()) {
			s.Init = p.parseVarDecl()
		} else {
			s.Init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.SEMI {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.RPAREN {
		s.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseBlockOrStmt()
	return s
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.tok.Kind
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{X: lhs, Op: op, Y: rhs}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{TokPos: pos, Op: token.MINUS, X: p.parseUnary()}
	case token.NOT:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{TokPos: pos, Op: token.NOT, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.DOT:
			dot := p.tok.Pos
			p.next()
			name := p.expect(token.IDENT).Lit
			if p.tok.Kind == token.LPAREN {
				pos := p.tok.Pos
				args := p.parseArgs()
				e = &ast.CallExpr{TokPos: pos, Recv: e, Method: name, Args: args}
			} else if name == "length" {
				e = &ast.LenExpr{X: e, DotPos: dot}
			} else {
				e = &ast.FieldAccess{X: e, Field: name, DotPos: dot}
			}
		case token.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			e = &ast.IndexExpr{X: e, Index: idx}
		default:
			return e
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	if p.tok.Kind != token.RPAREN {
		for {
			args = append(args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{TokPos: t.Pos, Value: v}
	case token.CHAR:
		p.next()
		var v int64
		for _, r := range t.Lit {
			v = int64(r)
			break
		}
		return &ast.IntLit{TokPos: t.Pos, Value: v}
	case token.STRING:
		p.next()
		return &ast.StringLit{TokPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{TokPos: t.Pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{TokPos: t.Pos, Value: false}
	case token.NULL:
		p.next()
		return &ast.NullLit{TokPos: t.Pos}
	case token.THIS:
		p.next()
		return &ast.ThisExpr{TokPos: t.Pos}
	case token.IDENT:
		p.next()
		if p.tok.Kind == token.LPAREN {
			args := p.parseArgs()
			return &ast.CallExpr{TokPos: t.Pos, Method: t.Lit, Args: args}
		}
		return &ast.Ident{TokPos: t.Pos, Name: t.Lit}
	case token.NEW:
		p.next()
		switch p.tok.Kind {
		case token.KWINT, token.BOOLEAN:
			elem := &ast.PrimType{TokPos: p.tok.Pos, Kind: p.tok.Kind}
			p.next()
			return p.parseNewArray(t.Pos, elem)
		case token.IDENT:
			name := p.tok.Lit
			npos := p.tok.Pos
			p.next()
			if p.tok.Kind == token.LBRACKET {
				return p.parseNewArray(t.Pos, &ast.NamedType{TokPos: npos, Name: name})
			}
			args := p.parseArgs()
			return &ast.NewExpr{TokPos: t.Pos, Class: name, Args: args}
		default:
			p.errorf(p.tok.Pos, "expected type after new, found %s", p.tok)
			p.next()
			return &ast.NullLit{TokPos: t.Pos}
		}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.NullLit{TokPos: t.Pos}
}

// parseNewArray parses the "[len]" and optional extra "[]" dims after
// `new Elem`. Multi-dimensional allocations allocate the outer array
// only (inner elements are null), matching Java's `new T[n][]`.
func (p *parser) parseNewArray(pos token.Pos, elem ast.Type) ast.Expr {
	p.expect(token.LBRACKET)
	length := p.parseExpr()
	p.expect(token.RBRACKET)
	typ := elem
	for p.tok.Kind == token.LBRACKET {
		p.next()
		p.expect(token.RBRACKET)
		typ = &ast.ArrayType{Elem: typ}
	}
	return &ast.NewArrayExpr{TokPos: pos, Elem: typ, Len: length}
}
