package parser

import (
	"strings"
	"testing"

	"racedet/internal/lang/ast"
	"racedet/internal/lang/token"
)

// roundTrip checks that printing a parsed program and re-parsing the
// output yields an identical rendering — a strong structural check on
// both parser and printer.
func roundTrip(t *testing.T, src string) *ast.Program {
	t.Helper()
	p1, err := Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := p1.String()
	p2, err := Parse("t.mj", out1)
	if err != nil {
		t.Fatalf("re-parse of printed output failed: %v\n--- output ---\n%s", err, out1)
	}
	out2 := p2.String()
	if out1 != out2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return p1
}

func TestParseMinimalClass(t *testing.T) {
	p := roundTrip(t, `class A { }`)
	if len(p.Classes) != 1 || p.Classes[0].Name != "A" {
		t.Fatalf("bad class list: %+v", p.Classes)
	}
}

func TestParseFieldsAndMethods(t *testing.T) {
	src := `
class A extends B {
    int x;
    static boolean flag;
    A[] peers;
    int[][] grid;

    static void main() { }
    synchronized int get(int i, boolean b) { return x; }
    A(int x0) { x = x0; }
}`
	p := roundTrip(t, src)
	c := p.Classes[0]
	if c.Extends != "B" {
		t.Errorf("extends = %q", c.Extends)
	}
	if len(c.Fields) != 4 {
		t.Fatalf("fields = %d", len(c.Fields))
	}
	if !c.Fields[1].Static {
		t.Error("flag should be static")
	}
	if c.Fields[3].Type.String() != "int[][]" {
		t.Errorf("grid type = %s", c.Fields[3].Type)
	}
	if len(c.Methods) != 3 {
		t.Fatalf("methods = %d", len(c.Methods))
	}
	if !c.Methods[0].Static {
		t.Error("main should be static")
	}
	if !c.Methods[1].Synchronized {
		t.Error("get should be synchronized")
	}
	if !c.Methods[2].IsCtor {
		t.Error("A(int) should be a constructor")
	}
}

func TestCtorVsFieldOfOwnType(t *testing.T) {
	// `A a;` inside class A must parse as a field, `A() {}` as ctor.
	src := `class A { A next; A() { next = null; } }`
	p := roundTrip(t, src)
	c := p.Classes[0]
	if len(c.Fields) != 1 || c.Fields[0].Name != "next" {
		t.Fatalf("fields: %+v", c.Fields)
	}
	if len(c.Methods) != 1 || !c.Methods[0].IsCtor {
		t.Fatalf("methods: %+v", c.Methods)
	}
}

func TestPrecedence(t *testing.T) {
	src := `class A { static void main() { int x = 1 + 2 * 3 - 4 / 2 % 3; boolean b = 1 < 2 && 3 >= 4 || !(5 == 6); } }`
	p := roundTrip(t, src)
	main := p.Classes[0].Methods[0]
	decl := main.Body.Stmts[0].(*ast.VarDeclStmt)
	// 1 + 2*3 - 4/2%3 => ((1 + (2*3)) - ((4/2)%3))
	bin := decl.Init.(*ast.BinaryExpr)
	if bin.Op != token.MINUS {
		t.Fatalf("top op = %v", bin.Op)
	}
	left := bin.X.(*ast.BinaryExpr)
	if left.Op != token.PLUS {
		t.Fatalf("left op = %v", left.Op)
	}
	if mul := left.Y.(*ast.BinaryExpr); mul.Op != token.STAR {
		t.Fatalf("mul op = %v", mul.Op)
	}
	if mod := bin.Y.(*ast.BinaryExpr); mod.Op != token.PERCENT {
		t.Fatalf("mod op = %v", mod.Op)
	}
	b := main.Body.Stmts[1].(*ast.VarDeclStmt)
	or := b.Init.(*ast.BinaryExpr)
	if or.Op != token.OR {
		t.Fatalf("want || at top, got %v", or.Op)
	}
	and := or.X.(*ast.BinaryExpr)
	if and.Op != token.AND {
		t.Fatalf("want && below ||, got %v", and.Op)
	}
}

func TestStatements(t *testing.T) {
	src := `
class A {
    int f;
    void m(int n) {
        int i;
        i = 0;
        i += 2;
        i++;
        i--;
        if (i < n) { i = n; } else if (i == n) { i = 0; } else { i = 1; }
        while (i > 0) { i = i - 1; if (i == 3) { break; } continue; }
        for (int j = 0; j < n; j++) { f = f + j; }
        synchronized (this) { f = 0; }
        print(i);
        print("text");
        return;
    }
}`
	roundTrip(t, src)
}

func TestVarDeclLookahead(t *testing.T) {
	src := `
class B { int v; }
class A {
    B b;
    void m() {
        B x = new B();       // class-typed decl
        B[] xs = new B[3];   // array-of-class decl
        x.v = 1;             // field assignment, not a decl
        xs[0] = x;           // index assignment
        b = x;               // plain assignment to field
    }
}`
	p := roundTrip(t, src)
	m := p.Classes[1].Methods[0]
	if _, ok := m.Body.Stmts[0].(*ast.VarDeclStmt); !ok {
		t.Errorf("stmt 0 should be a var decl, got %T", m.Body.Stmts[0])
	}
	if _, ok := m.Body.Stmts[1].(*ast.VarDeclStmt); !ok {
		t.Errorf("stmt 1 should be a var decl, got %T", m.Body.Stmts[1])
	}
	if _, ok := m.Body.Stmts[2].(*ast.AssignStmt); !ok {
		t.Errorf("stmt 2 should be an assignment, got %T", m.Body.Stmts[2])
	}
}

func TestExpressions(t *testing.T) {
	src := `
class A {
    int f;
    A next;
    int[] arr;
    int m(A other) {
        int a = this.f + other.f;
        int b = arr[2] + other.arr.length;
        A c = new A();
        int[] d = new int[10];
        boolean e = c == null || c != other;
        int g = -a + m(c);
        int h = other.m(this);
        return a + b + g + h;
    }
}`
	roundTrip(t, src)
}

func TestCharLiteralValue(t *testing.T) {
	src := `class A { static void main() { int c = 'x'; print(c); } }`
	p := roundTrip(t, src)
	decl := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.VarDeclStmt)
	lit := decl.Init.(*ast.IntLit)
	if lit.Value != 'x' {
		t.Errorf("char value = %d, want %d", lit.Value, 'x')
	}
}

func TestDanglingElse(t *testing.T) {
	src := `class A { void m(int x) { if (x > 0) if (x > 1) x = 2; else x = 3; } }`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	outer := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Fatal("else must bind to the inner if")
	}
	inner := outer.Then.Stmts[0].(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestMultiDimNewArray(t *testing.T) {
	src := `class A { static void main() { int[][] g = new int[4][]; g[0] = new int[8]; } }`
	roundTrip(t, src)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`class`,                             // truncated
		`class A {`,                         // unclosed
		`class A { int; }`,                  // missing name
		`class A { void m() { x = ; } }`,    // missing expr
		`class A { void m() { if x { } } }`, // missing parens
		`class A { void m() { synchronized x { } } }`, // missing parens
		`class A { void m() { 1 + 2; } }`,             // expr not a statement
		`class A { void m(int) { } }`,                 // missing param name
		`class A { static A() { } }`,                  // static ctor
		`void m() { }`,                                // method outside class
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorListFormatting(t *testing.T) {
	_, err := Parse("t", "class A { ?? ?? ?? }")
	if err == nil {
		t.Fatal("want errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "t:1:") {
		t.Errorf("error lacks position: %q", msg)
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error is %T, want ErrorList", err)
	}
	if len(list) < 2 && !strings.Contains(msg, "more errors") {
		t.Errorf("multiple errors expected, got %q", msg)
	}
}

func TestErrorRecoveryProducesPartialTree(t *testing.T) {
	src := `
class Good { int x; }
class Bad { void m() { x = ; } }
class AlsoGood { int y; }`
	p, err := Parse("t", src)
	if err == nil {
		t.Fatal("want an error")
	}
	if p == nil || len(p.Classes) < 2 {
		t.Fatalf("recovery should keep parsing; got %d classes", len(p.Classes))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("t", "class {")
}

func TestCloneIndependence(t *testing.T) {
	src := `class A { int f; void m() { while (f < 3) { f = f + 1; } } }`
	p := MustParse("t", src)
	loop := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.WhileStmt)
	clone := ast.CloneStmt(loop).(*ast.WhileStmt)
	// Mutating the clone must not affect the original.
	clone.Body.Stmts = nil
	if len(loop.Body.Stmts) != 1 {
		t.Fatal("clone shares body with original")
	}
	if clone.Pos() != loop.Pos() {
		t.Error("clone should preserve positions")
	}
}
