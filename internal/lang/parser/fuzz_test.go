package parser

import "testing"

// FuzzParse asserts the parser never panics on arbitrary input and,
// when it succeeds, its output re-parses (print/parse stability).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"class A { }",
		"class A extends B { int x; void m(int y) { x = y; } }",
		"class A { A() { } }",
		"class M { static void main() { for (int i = 0; i < 3; i++) { print(i); } } }",
		"class A { void m() { synchronized (this) { return; } } }",
		"class A { int[] a; void m() { a = new int[3]; a[0] = a.length; } }",
		"class { } } {",
		"class A { void m() { if (x ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.mj", src)
		if err != nil {
			return // errors are fine; panics are not
		}
		out := prog.String()
		prog2, err := Parse("fuzz.mj", out)
		if err != nil {
			t.Fatalf("printed output does not re-parse: %v\n--- printed ---\n%s", err, out)
		}
		if prog2.String() != out {
			t.Fatalf("print/parse not stable")
		}
	})
}
