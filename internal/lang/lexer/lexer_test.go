package lexer

import (
	"strings"
	"testing"

	"racedet/internal/lang/token"
)

// kinds scans src and returns the token kinds before EOF.
func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("test.mj", src)
	if len(errs) > 0 {
		t.Fatalf("unexpected lex errors for %q: %v", src, errs[0])
	}
	out := make([]token.Kind, 0, len(toks)-1)
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		out = append(out, tk.Kind)
	}
	return out
}

func equalKinds(a, b []token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOperators(t *testing.T) {
	src := "+ - * / % == != < <= > >= && || ! = += -= *= /= ++ -- ( ) { } [ ] , . ;"
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ,
		token.AND, token.OR, token.NOT,
		token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN, token.STARASSIGN, token.SLASHASSIGN,
		token.INC, token.DEC,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.DOT, token.SEMI,
	}
	if got := kinds(t, src); !equalKinds(got, want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestMaximalMunch(t *testing.T) {
	// <= must not scan as < =, ++ not as + +, etc.
	cases := map[string][]token.Kind{
		"a<=b":  {token.IDENT, token.LEQ, token.IDENT},
		"a<b":   {token.IDENT, token.LT, token.IDENT},
		"a==b":  {token.IDENT, token.EQ, token.IDENT},
		"a=b":   {token.IDENT, token.ASSIGN, token.IDENT},
		"i++":   {token.IDENT, token.INC},
		"i+ +j": {token.IDENT, token.PLUS, token.PLUS, token.IDENT},
		"i+=1":  {token.IDENT, token.PLUSASSIGN, token.INT},
		"a!=b":  {token.IDENT, token.NEQ, token.IDENT},
		"!a":    {token.NOT, token.IDENT},
	}
	for src, want := range cases {
		if got := kinds(t, src); !equalKinds(got, want) {
			t.Errorf("%q: got %v want %v", src, got, want)
		}
	}
}

func TestIdentifiersAndKeywords(t *testing.T) {
	src := "class Foo extends Thread while whileX _x x1"
	want := []token.Kind{
		token.CLASS, token.IDENT, token.EXTENDS, token.IDENT,
		token.WHILE, token.IDENT, token.IDENT, token.IDENT,
	}
	if got := kinds(t, src); !equalKinds(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("t", "0 7 1234567890")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	wantLits := []string{"0", "7", "1234567890"}
	for i, want := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != want {
			t.Errorf("token %d = %v, want INT(%s)", i, toks[i], want)
		}
	}
}

func TestNumberFollowedByIdentIsError(t *testing.T) {
	_, errs := ScanAll("t", "12abc")
	if len(errs) == 0 {
		t.Fatal("want error for 12abc")
	}
}

func TestComments(t *testing.T) {
	src := `
// a line comment with symbols +-*/ and "strings"
x /* block
   spanning lines */ y // trailing
/* adjacent */z`
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT}
	if got := kinds(t, src); !equalKinds(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("t", "x /* never closed")
	if len(errs) == 0 {
		t.Fatal("want unterminated-comment error")
	}
	if !strings.Contains(errs[0].Error(), "unterminated block comment") {
		t.Errorf("unexpected error %v", errs[0])
	}
}

func TestStrings(t *testing.T) {
	toks, errs := ScanAll("t", `"hello" "a\nb" "q\"q" "back\\slash" "tab\tx" ""`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	want := []string{"hello", "a\nb", `q"q`, `back\slash`, "tab\tx", ""}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("token %d = %v, want STRING(%q)", i, toks[i], w)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"newline\n\"", `"bad \q escape"`} {
		_, errs := ScanAll("t", src)
		if len(errs) == 0 {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	toks, errs := ScanAll("t", `'a' '\n' '\\' '\''`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	want := []string{"a", "\n", "\\", "'"}
	for i, w := range want {
		if toks[i].Kind != token.CHAR || toks[i].Lit != w {
			t.Errorf("token %d = %v, want CHAR(%q)", i, toks[i], w)
		}
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "a & b", "a | b", "~x"} {
		_, errs := ScanAll("t", src)
		if len(errs) == 0 {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	src := "ab cd\n  ef"
	toks, _ := ScanAll("f.mj", src)
	wants := []token.Pos{
		{File: "f.mj", Line: 1, Col: 1},
		{File: "f.mj", Line: 1, Col: 4},
		{File: "f.mj", Line: 2, Col: 3},
	}
	for i, w := range wants {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t", "x")
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}

func TestScanWholeProgram(t *testing.T) {
	src := `
class Main {
    static int counter;
    static void main() {
        int i = 0;
        while (i < 10) { counter += i; i++; }
        print(counter);
    }
}`
	toks, errs := ScanAll("main.mj", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	if len(toks) < 30 {
		t.Errorf("suspiciously few tokens: %d", len(toks))
	}
	if toks[len(toks)-1].Kind != token.EOF {
		t.Error("missing EOF")
	}
}
