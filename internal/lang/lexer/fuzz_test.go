package lexer

import (
	"testing"

	"racedet/internal/lang/token"
)

// FuzzScanAll asserts the lexer never panics, always terminates, and
// always ends with EOF, on arbitrary byte soup. `go test` exercises
// the seed corpus; `go test -fuzz=FuzzScanAll` explores further.
func FuzzScanAll(f *testing.F) {
	seeds := []string{
		"",
		"class A { int x; }",
		`"unterminated`,
		"/* unterminated",
		"'a",
		"12abc @#$ |&",
		"a+++++b <= >= == != && || ! % /",
		"\x00\xff\xfe invalid utf8 \x80",
		"// comment only",
		"synchronized(this){while(true){}}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, _ := ScanAll("fuzz.mj", src)
		if len(toks) == 0 {
			t.Fatal("ScanAll returned no tokens")
		}
		if toks[len(toks)-1].Kind != token.EOF {
			t.Fatal("token stream does not end with EOF")
		}
		// Positions must be monotone non-decreasing by (line, col).
		for i := 1; i < len(toks); i++ {
			a, b := toks[i-1].Pos, toks[i].Pos
			if b.Line < a.Line || (b.Line == a.Line && b.Col < a.Col) {
				t.Fatalf("positions went backwards: %v then %v", a, b)
			}
		}
	})
}
