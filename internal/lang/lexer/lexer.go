// Package lexer implements the scanner for MJ source text.
//
// The scanner is a conventional hand-written single-pass lexer. It
// produces token.Token values, skipping whitespace and comments
// (both // line comments and /* block comments */). Errors are
// accumulated rather than aborting so the parser can report several
// problems at once.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"racedet/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MJ source text into tokens.
type Lexer struct {
	file string
	src  string

	offset int // byte offset of the next rune
	line   int32
	col    int32

	errs []*Error
}

// New returns a lexer over src. file is used in positions only.
func New(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

// peek returns the next rune without consuming it; utf8.RuneError with
// size 0 signals EOF.
func (l *Lexer) peek() rune {
	if l.offset >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.offset:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.offset >= len(l.src) {
		return -1
	}
	_, size := utf8.DecodeRuneInString(l.src[l.offset:])
	if l.offset+size >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.offset+size:])
	return r
}

func (l *Lexer) next() rune {
	if l.offset >= len(l.src) {
		return -1
	}
	r, size := utf8.DecodeRuneInString(l.src[l.offset:])
	l.offset += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// skipSpaceAndComments consumes whitespace and comments. It reports an
// error for an unterminated block comment.
func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.next()
		case r == '/' && l.peek2() == '/':
			for r := l.peek(); r != '\n' && r != -1; r = l.peek() {
				l.next()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.next()
			l.next()
			closed := false
			for {
				r := l.next()
				if r == -1 {
					break
				}
				if r == '*' && l.peek() == '/' {
					l.next()
					closed = true
					break
				}
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	r := l.peek()
	if r == -1 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case isIdentStart(r):
		start := l.offset
		for isIdentCont(l.peek()) {
			l.next()
		}
		lit := l.src[start:l.offset]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}

	case unicode.IsDigit(r):
		start := l.offset
		for unicode.IsDigit(l.peek()) {
			l.next()
		}
		if isIdentStart(l.peek()) {
			l.errorf(pos, "identifier immediately follows number")
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.offset], Pos: pos}

	case r == '"':
		return l.scanString(pos)
	case r == '\'':
		return l.scanChar(pos)
	}

	l.next()
	two := func(second rune, twoKind, oneKind token.Kind) token.Token {
		if l.peek() == second {
			l.next()
			return token.Token{Kind: twoKind, Pos: pos}
		}
		return token.Token{Kind: oneKind, Pos: pos}
	}

	switch r {
	case '+':
		if l.peek() == '+' {
			l.next()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.PLUSASSIGN, token.PLUS)
	case '-':
		if l.peek() == '-' {
			l.next()
			return token.Token{Kind: token.DEC, Pos: pos}
		}
		return two('=', token.MINUSASSIGN, token.MINUS)
	case '*':
		return two('=', token.STARASSIGN, token.STAR)
	case '/':
		return two('=', token.SLASHASSIGN, token.SLASH)
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '&':
		if l.peek() == '&' {
			l.next()
			return token.Token{Kind: token.AND, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", r)
		return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: pos}
	case '|':
		if l.peek() == '|' {
			l.next()
			return token.Token{Kind: token.OR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", r)
		return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: pos}
}

// scanString scans a double-quoted string literal with \n \t \\ \" escapes.
func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.next() // opening quote
	var b strings.Builder
	for {
		r := l.next()
		switch r {
		case -1, '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		case '"':
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		case '\\':
			switch esc := l.next(); esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				l.errorf(pos, "invalid escape \\%c in string literal", esc)
			}
		default:
			b.WriteRune(r)
		}
	}
}

// scanChar scans a single-quoted character literal; its value is the
// code point, usable as an int.
func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.next() // opening quote
	r := l.next()
	if r == '\\' {
		switch esc := l.next(); esc {
		case 'n':
			r = '\n'
		case 't':
			r = '\t'
		case '\\':
			r = '\\'
		case '\'':
			r = '\''
		default:
			l.errorf(pos, "invalid escape \\%c in char literal", esc)
		}
	}
	if l.peek() != '\'' {
		l.errorf(pos, "unterminated char literal")
	} else {
		l.next()
	}
	return token.Token{Kind: token.CHAR, Lit: string(r), Pos: pos}
}

// ScanAll scans the entire input, returning all tokens up to and
// including EOF. Useful for tests and tooling.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
