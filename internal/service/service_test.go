package service

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"racedet"
	"racedet/internal/faultinject"
)

const racyProg = `
class Data { int f; }
class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class Main {
    static void main() {
        Data x = new Data();
        x.f = 0;
        Worker a = new Worker(x);
        Worker b = new Worker(x);
        a.start(); b.start(); a.join(); b.join();
        print(x.f);
    }
}`

var cleanProg = strings.Replace(racyProg,
	"void run() { d.f = d.f + 1; }",
	"void run() { synchronized (d) { d.f = d.f + 1; } }", 1)

// spinProg races first, then spins productively forever: the per-job
// wall-clock watchdog has to abort it, and the already-found races
// must survive into the partial report.
var spinProg = strings.Replace(racyProg,
	"print(x.f);",
	"print(x.f); while (true) { x.f = x.f + 1; }", 1)

// newTestServer wires a Server to a real HTTP listener and returns a
// client pointed at it.
func newTestServer(t *testing.T, opts Options) (*Server, *Client, func()) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	return s, &Client{Base: ts.URL}, ts.Close
}

// mustPlan parses a fault spec or fails the test.
func mustPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatalf("faultinject.Parse(%q): %v", spec, err)
	}
	return p
}

// oneShot runs the same program through the public one-shot API with
// the daemon-equivalent options; sharded and serial back ends emit
// identical reports, so this is the reference verdict.
func oneShot(t *testing.T, file, src string, seed int64) *racedet.Result {
	t.Helper()
	res, err := racedet.Detect(file, src, racedet.Options{Seed: seed})
	if err != nil {
		t.Fatalf("one-shot Detect(%s): %v", file, err)
	}
	return res
}

func TestAnalyzeRacyAndClean(t *testing.T) {
	s, c, stop := newTestServer(t, Options{})
	defer stop()

	if err := c.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	racy, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg})
	if err != nil {
		t.Fatalf("analyze racy: %v", err)
	}
	if len(racy.Races) == 0 {
		t.Fatalf("racy program reported no races: %+v", racy)
	}
	if racy.Races[0].Field != "Data.f" {
		t.Errorf("race field = %q, want Data.f", racy.Races[0].Field)
	}
	if racy.CompileError != "" || racy.RuntimeError != "" || racy.Degraded {
		t.Errorf("racy job not clean: %+v", racy)
	}
	if racy.Job == 0 {
		t.Error("job index not assigned")
	}

	clean, err := c.Analyze(JobRequest{File: "clean.mj", Source: cleanProg})
	if err != nil {
		t.Fatalf("analyze clean: %v", err)
	}
	if len(clean.Races) != 0 {
		t.Errorf("clean program reported races: %+v", clean.Races)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["jobs_admitted"] != 2 || m["jobs_completed"] != 2 {
		t.Errorf("admitted=%d completed=%d, want 2/2", m["jobs_admitted"], m["jobs_completed"])
	}
	if m["races_reported"] == 0 {
		t.Error("races_reported not counted")
	}
	if got := s.Metrics(); got.Terminal() != got.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", got.Terminal(), got.JobsAdmitted)
	}
}

func TestDetectorSelection(t *testing.T) {
	_, c, stop := newTestServer(t, Options{})
	defer stop()

	res, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg, Detector: "eraser"})
	if err != nil {
		t.Fatalf("analyze eraser: %v", err)
	}
	found := false
	for _, r := range res.BaselineReports {
		if strings.Contains(r, "ERASER RACE") {
			found = true
		}
	}
	if !found {
		t.Errorf("eraser job missing baseline reports: %+v", res)
	}
}

func TestSessionPanicRetriedMatchesOneShot(t *testing.T) {
	const seed = 7
	s, c, stop := newTestServer(t, Options{
		RetryBudget:  3,
		RetryBackoff: time.Millisecond,
		Faults:       mustPlan(t, "session-panic:job=1,times=2"),
	})
	defer stop()

	got, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg, Seed: seed})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if got.Retries != 2 {
		t.Errorf("retries = %d, want 2", got.Retries)
	}
	if got.Degraded {
		t.Errorf("job degraded despite retry budget: %+v", got)
	}

	want := oneShot(t, "racy.mj", racyProg, seed)
	if !reflect.DeepEqual(got.Races, want.Races) {
		t.Errorf("retried session races diverge from one-shot:\n got %+v\nwant %+v",
			got.Races, want.Races)
	}
	if got.Output != want.Output {
		t.Errorf("output diverges: got %q want %q", got.Output, want.Output)
	}

	m := s.Metrics()
	if m.SessionPanics != 2 || m.SessionRetries != 2 {
		t.Errorf("panics=%d retries=%d, want 2/2", m.SessionPanics, m.SessionRetries)
	}
	if m.JobsCompleted != 1 {
		t.Errorf("jobs_completed = %d, want 1", m.JobsCompleted)
	}
}

func TestRetryBudgetExhaustedDegradesToEraser(t *testing.T) {
	s, c, stop := newTestServer(t, Options{
		RetryBudget:  1,
		RetryBackoff: time.Millisecond,
		Faults:       mustPlan(t, "session-panic:job=1,times=9"),
	})
	defer stop()

	got, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !got.Degraded {
		t.Fatalf("job should be degraded: %+v", got)
	}
	if !strings.Contains(got.DegradedReason, "injected session panic") {
		t.Errorf("degraded reason = %q, want the injected panic text", got.DegradedReason)
	}
	found := false
	for _, r := range got.BaselineReports {
		if strings.Contains(r, "ERASER RACE") {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded job carries no Eraser verdict: %+v", got)
	}

	m := s.Metrics()
	if m.JobsDegraded != 1 {
		t.Errorf("jobs_degraded = %d, want 1", m.JobsDegraded)
	}
	if m.SessionPanics != 2 {
		t.Errorf("session_panics = %d, want 2 (initial + one retry)", m.SessionPanics)
	}
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].State != StateDegraded {
		t.Errorf("journal = %+v, want one degraded entry", jobs)
	}
}

func TestConcurrentSessionsIsolated(t *testing.T) {
	// Four concurrent sessions; whichever is admitted second panics
	// once. Every session must still return its own correct verdict.
	s, c, stop := newTestServer(t, Options{
		MaxSessions:  4,
		RetryBudget:  3,
		RetryBackoff: time.Millisecond,
		Faults:       mustPlan(t, "session-panic:job=2,times=1"),
	})
	defer stop()

	srcs := []struct {
		file string
		src  string
		racy bool
	}{
		{"racy1.mj", racyProg, true},
		{"clean1.mj", cleanProg, false},
		{"racy2.mj", racyProg, true},
		{"clean2.mj", cleanProg, false},
	}
	var wg sync.WaitGroup
	results := make([]*JobResult, len(srcs))
	errs := make([]error, len(srcs))
	for i, in := range srcs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Analyze(JobRequest{File: in.file, Source: in.src})
		}()
	}
	wg.Wait()

	for i, in := range srcs {
		if errs[i] != nil {
			t.Fatalf("job %s: %v", in.file, errs[i])
		}
		res := results[i]
		if res.Degraded || res.CompileError != "" || res.RuntimeError != "" {
			t.Errorf("job %s not clean: %+v", in.file, res)
		}
		if got := len(res.Races) > 0; got != in.racy {
			t.Errorf("job %s: racy=%v, want %v", in.file, got, in.racy)
		}
	}
	m := s.Metrics()
	if m.SessionPanics != 1 {
		t.Errorf("session_panics = %d, want 1", m.SessionPanics)
	}
	if m.JobsCompleted != 4 || m.Terminal() != m.JobsAdmitted {
		t.Errorf("completed=%d terminal=%d admitted=%d", m.JobsCompleted, m.Terminal(), m.JobsAdmitted)
	}
	if m.SessionsPeak < 2 {
		t.Errorf("sessions_peak = %d, want >= 2", m.SessionsPeak)
	}
}

func TestAdmissionLoadShed(t *testing.T) {
	// One slot, no queue; the first job stalls (injected slow client)
	// while holding the slot, so the second must be shed with a
	// Retry-After hint.
	s, c, stop := newTestServer(t, Options{
		MaxSessions: 1,
		QueueDepth:  -1,
		RetryAfter:  2 * time.Second,
		Faults:      mustPlan(t, "slow-client:job=1,delay=400ms"),
	})
	defer stop()

	done := make(chan error, 1)
	go func() {
		_, err := c.Analyze(JobRequest{File: "slow.mj", Source: cleanProg})
		done <- err
	}()

	// Wait until the slow job actually holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().SlowClientStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow-client fault never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := c.Analyze(JobRequest{File: "shed.mj", Source: cleanProg})
	u, ok := err.(*Unavailable)
	if !ok {
		t.Fatalf("second job error = %v, want *Unavailable", err)
	}
	if u.RetryAfter != 2*time.Second {
		t.Errorf("retry-after = %v, want 2s", u.RetryAfter)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow job failed: %v", err)
	}

	m := s.Metrics()
	if m.JobsShed != 1 {
		t.Errorf("jobs_shed = %d, want 1", m.JobsShed)
	}
	if m.JobsAdmitted != 1 || m.JobsCompleted != 1 {
		t.Errorf("admitted=%d completed=%d, want 1/1", m.JobsAdmitted, m.JobsCompleted)
	}
}

func TestInjectedAdmissionFull(t *testing.T) {
	s, c, stop := newTestServer(t, Options{
		Faults: mustPlan(t, "admission-full:times=1"),
	})
	defer stop()

	if _, err := c.Analyze(JobRequest{File: "a.mj", Source: cleanProg}); err == nil {
		t.Fatal("injected admission-full should shed the first job")
	} else if _, ok := err.(*Unavailable); !ok {
		t.Fatalf("error = %v, want *Unavailable", err)
	}
	// The fault budget is spent: the next job goes through.
	if _, err := c.Analyze(JobRequest{File: "b.mj", Source: cleanProg}); err != nil {
		t.Fatalf("second job should be admitted: %v", err)
	}
	if m := s.Metrics(); m.JobsShed != 1 || m.JobsCompleted != 1 {
		t.Errorf("shed=%d completed=%d, want 1/1", m.JobsShed, m.JobsCompleted)
	}
}

func TestQueuedJobWaitsForSlot(t *testing.T) {
	// One slot but a deep queue: the second job must wait, not shed.
	s, c, stop := newTestServer(t, Options{
		MaxSessions: 1,
		QueueDepth:  4,
		Faults:      mustPlan(t, "slow-client:job=1,delay=200ms"),
	})
	defer stop()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Analyze(JobRequest{File: "q.mj", Source: cleanProg})
		}()
		time.Sleep(50 * time.Millisecond) // deterministic admission order
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i+1, err)
		}
	}
	m := s.Metrics()
	if m.JobsShed != 0 {
		t.Errorf("jobs_shed = %d, want 0 (queue should absorb)", m.JobsShed)
	}
	if m.JobsCompleted != 2 {
		t.Errorf("jobs_completed = %d, want 2", m.JobsCompleted)
	}
	if m.QueueHighWater < 1 {
		t.Errorf("queue_high_water = %d, want >= 1", m.QueueHighWater)
	}
}

func TestBadRequests(t *testing.T) {
	s, c, stop := newTestServer(t, Options{})
	defer stop()

	resp, err := http.Post(c.Base+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}

	if _, err := c.Analyze(JobRequest{File: "x.mj", Source: racyProg, Detector: "bogus"}); err == nil {
		t.Error("unknown detector should fail")
	}

	resp, err = http.Get(c.Base + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d, want 405", resp.StatusCode)
	}

	m := s.Metrics()
	if m.JobsAdmitted != 2 || m.JobsFailed != 2 {
		t.Errorf("admitted=%d failed=%d, want 2/2", m.JobsAdmitted, m.JobsFailed)
	}
	if m.Terminal() != m.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d: bad requests must still be terminal",
			m.Terminal(), m.JobsAdmitted)
	}
	for _, j := range s.Jobs() {
		if j.State != StateBadRequest {
			t.Errorf("journal %+v, want bad-request", j)
		}
	}
}

func TestSamplingJobs(t *testing.T) {
	s, c, stop := newTestServer(t, Options{SampleK: 4})
	defer stop()

	// A hot polling idiom with a stable race: enough repeat traffic for
	// throttling to demote sites and suppress events, while the
	// recurring cross-thread contact keeps the race observable.
	src, err := os.ReadFile("../corpus/testdata/handoff_pipeline.mj")
	if err != nil {
		t.Fatal(err)
	}
	hotRacyProg := string(src)

	// The daemon-wide default applies: the stable race survives
	// throttling and the suppression work is visible in the stats.
	res, err := c.Analyze(JobRequest{File: "hot.mj", Source: hotRacyProg})
	if err != nil {
		t.Fatalf("analyze sampled: %v", err)
	}
	found := false
	for _, r := range res.Races {
		if r.Field == "Item.value" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sampled job lost the Item.value race: %+v", res.Races)
	}
	if res.Stats.EventsSuppressed == 0 || res.Stats.SitesDemoted == 0 {
		t.Errorf("sampled job shows no throttling work: suppressed=%d demoted=%d",
			res.Stats.EventsSuppressed, res.Stats.SitesDemoted)
	}

	// A job-level override can force throttling off.
	off, err := c.Analyze(JobRequest{File: "hot.mj", Source: hotRacyProg, SampleK: -1})
	if err != nil {
		t.Fatalf("analyze override-off: %v", err)
	}
	if off.Stats.EventsSuppressed != 0 || off.Stats.SitesSampled != 0 {
		t.Errorf("override-off job still sampled: %+v", off.Stats)
	}

	// The aggregated counters reach GET /metrics.
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, name := range []string{"events_shipped", "events_suppressed", "sites_demoted", "sites_rearmed"} {
		if _, ok := m[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	if m["events_suppressed"] != int64(res.Stats.EventsSuppressed) {
		t.Errorf("metrics events_suppressed = %d, want %d",
			m["events_suppressed"], res.Stats.EventsSuppressed)
	}
	if m["sites_demoted"] == 0 {
		t.Error("metrics sites_demoted not aggregated")
	}

	// A budget outside [0, 1] is a bad request, refused at admission.
	if _, err := c.Analyze(JobRequest{File: "x.mj", Source: racyProg, SampleBudget: 1.5}); err == nil {
		t.Error("sample_budget > 1 should be a bad request")
	}
	snap := s.Metrics()
	if snap.JobsFailed != 1 {
		t.Errorf("jobs_failed = %d, want 1 (the bad budget)", snap.JobsFailed)
	}
	if snap.Terminal() != snap.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", snap.Terminal(), snap.JobsAdmitted)
	}
}

func TestWatchdogAbortKeepsPartialReport(t *testing.T) {
	s, c, stop := newTestServer(t, Options{JobTimeout: 150 * time.Millisecond})
	defer stop()

	res, err := c.Analyze(JobRequest{File: "spin.mj", Source: spinProg})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.HasPrefix(res.RuntimeError, "watchdog") {
		t.Fatalf("runtime error = %q, want watchdog", res.RuntimeError)
	}
	if len(res.Races) == 0 {
		t.Error("watchdog-aborted job lost its partial race report")
	}
	m := s.Metrics()
	if m.WatchdogFires != 1 {
		t.Errorf("watchdog_fires = %d, want 1", m.WatchdogFires)
	}
	if m.JobsFailed != 1 {
		t.Errorf("jobs_failed = %d, want 1", m.JobsFailed)
	}
}

func TestClientDisconnectDoesNotLoseJob(t *testing.T) {
	s, c, stop := newTestServer(t, Options{
		Faults: mustPlan(t, "client-disconnect:job=1"),
	})
	defer stop()

	// The daemon tears the connection down after finishing the job, so
	// the client sees a transport error — but the job is journaled.
	if _, err := c.Analyze(JobRequest{File: "gone.mj", Source: racyProg}); err == nil {
		t.Fatal("disconnected client should see a transport error")
	}
	m := s.Metrics()
	if m.ClientDisconnects != 1 {
		t.Errorf("client_disconnects = %d, want 1", m.ClientDisconnects)
	}
	if m.JobsCompleted != 1 {
		t.Errorf("jobs_completed = %d, want 1 (work must finish without its client)", m.JobsCompleted)
	}
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].State != StateCompleted || jobs[0].Races == 0 {
		t.Errorf("journal = %+v, want one completed racy entry", jobs)
	}
}

func TestFactCacheSharedAcrossSessions(t *testing.T) {
	s, c, stop := newTestServer(t, Options{FactCacheDir: t.TempDir()})
	defer stop()

	first, err := c.Analyze(JobRequest{File: "warm.mj", Source: racyProg})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.FactCacheProgramHit {
		t.Error("first compile cannot be a program-level hit")
	}
	second, err := c.Analyze(JobRequest{File: "warm.mj", Source: racyProg})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.FactCacheProgramHit {
		t.Error("second identical compile should hit the shared fact cache")
	}
	if m := s.Metrics(); m.FactProgramHits == 0 {
		t.Error("factcache_program_hits not aggregated")
	}
}

func TestServeReturnsNilAfterDrain(t *testing.T) {
	s := New(Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()
	c := &Client{Base: "http://" + l.Addr().String()}

	// Wait for the listener to answer.
	deadline := time.Now().Add(2 * time.Second)
	for c.Health() != nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if rep := s.Drain(time.Second); !rep.Clean {
		t.Errorf("idle drain not clean: %+v", rep)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("Serve did not return after drain")
	}
}

func TestMetricsEndpointFormat(t *testing.T) {
	_, c, stop := newTestServer(t, Options{})
	defer stop()
	if _, err := c.Analyze(JobRequest{File: "m.mj", Source: racyProg}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"jobs_admitted", "jobs_completed", "jobs_shed", "jobs_aborted_at_drain",
		"session_panics", "watchdog_fires", "races_reported", "draining",
		"factcache_program_hits", "worker_restarts", "backpressure_stalls",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
	if m["draining"] != 0 {
		t.Error("draining gauge set on a live daemon")
	}
}
