// Client side of the daemon API: a thin JSON/HTTP wrapper used by the
// tests, the CI smoke, and anything else that wants to talk to a
// running racedetd without hand-rolling requests.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Unavailable is the load-shed / draining response: the daemon
// refused the job and (for load shedding) suggested when to retry.
type Unavailable struct {
	// Reason is the daemon's refusal text ("draining", queue-full...).
	Reason string
	// RetryAfter is the parsed Retry-After hint (0 when absent, i.e.
	// the daemon is draining rather than momentarily busy).
	RetryAfter time.Duration
}

func (e *Unavailable) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("racedetd unavailable: %s (retry after %v)", e.Reason, e.RetryAfter)
	}
	return "racedetd unavailable: " + e.Reason
}

// Client talks to one racedetd instance.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:7421".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Analyze submits one job and waits for its verdict. A load-shed or
// draining refusal returns *Unavailable; a bad request or daemon-side
// failure returns a plain error.
func (c *Client) Analyze(req JobRequest) (*JobResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.Base+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var out JobResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("decoding job result: %w", err)
		}
		return &out, nil
	case http.StatusServiceUnavailable:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		u := &Unavailable{Reason: strings.TrimSpace(string(msg))}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			u.RetryAfter = time.Duration(ra) * time.Second
		}
		return nil, u
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("racedetd: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
}

// AnalyzeRetry submits a job, honoring load-shed Retry-After hints up
// to the given number of additional attempts. Retried submissions are
// at-least-once: set JobRequest.IdempotencyKey so a job whose first
// acknowledgment was lost is answered from the stored result instead
// of being analyzed twice.
func (c *Client) AnalyzeRetry(req JobRequest, retries int) (*JobResult, error) {
	return c.AnalyzeRetryCtx(context.Background(), req, retries)
}

// AnalyzeRetryCtx is AnalyzeRetry with cancellation: a context that
// expires during a backoff sleep aborts the remaining attempts with
// ctx.Err(). Each sleep jitters the daemon's Retry-After hint (see
// retryDelay) so shed clients do not re-stampede in lockstep.
func (c *Client) AnalyzeRetryCtx(ctx context.Context, req JobRequest, retries int) (*JobResult, error) {
	var last error
	for i := 0; i <= retries; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := c.Analyze(req)
		if err == nil {
			return res, nil
		}
		last = err
		u, ok := err.(*Unavailable)
		if !ok || u.RetryAfter <= 0 {
			return nil, err
		}
		t := time.NewTimer(retryDelay(u.RetryAfter))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	return nil, last
}

// retryDelay spreads a Retry-After hint over [d/2, 3d/2) so clients
// shed at the same instant come back staggered instead of as a
// synchronized thundering herd.
func retryDelay(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Health returns nil while the daemon admits jobs and *Unavailable
// once it is draining.
func (c *Client) Health() error {
	resp, err := c.http().Get(c.Base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return &Unavailable{Reason: strings.TrimSpace(string(msg))}
}

// Metrics scrapes /metrics into a name → value map (names without the
// racedetd_ prefix).
func (c *Client) Metrics() (map[string]int64, error) {
	resp, err := c.http().Get(c.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("metrics: bad line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q", line)
		}
		out[strings.TrimPrefix(name, "racedetd_")] = n
	}
	return out, sc.Err()
}
