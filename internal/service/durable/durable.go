// Package durable is racedetd's crash-safe job journal: a disk-backed
// write-ahead log that survives kill -9, torn writes, and a full disk
// without ever losing an admitted job silently.
//
// The contract mirrors the in-memory job journal of internal/service
// (every admitted job ends in exactly one counted terminal state), but
// across process lifetimes: an "admit" record is fsync'd to the log
// before the daemon may acknowledge a job, and a "result" record is
// appended when the job reaches a terminal state. On restart the
// daemon replays the log — a job with both records serves its stored
// result (idempotency), a job with only an admit record re-runs (the
// deterministic scheduler makes the re-run verdict byte-identical to
// the lost one), and a job with neither was never acknowledged, so the
// client's retry is the recovery path.
//
// # On-disk format
//
// One file, wal.log, in the state directory:
//
//	magic   8 bytes  "MJWAL1\n\x00"
//	record  4 bytes  payload length (uint32 LE)
//	        4 bytes  CRC-32C (Castagnoli) of the payload (uint32 LE)
//	        N bytes  JSON-encoded Record
//	...
//
// Records are framed, checksummed, and individually fsync'd (in
// SyncAlways mode), so the only states a crash can leave behind are a
// clean prefix of whole records plus, at most, one torn frame at the
// very end.
//
// # Corruption discipline (the trace.FormatError rules)
//
// Open distinguishes the two corruption shapes the same way the binary
// trace reader does:
//
//   - Corrupt tail — a torn frame, a frame extending past EOF, or a
//     checksum mismatch after which no valid record follows. This is
//     what a crash mid-append produces. The log is truncated back to
//     the last whole record, the truncation is counted, and recovery
//     proceeds: a torn admit record means the client never got an
//     acknowledgment, so dropping it is correct.
//   - Corrupt middle — a damaged record with valid records after it.
//     No crash produces this (appends are sequential); it means the
//     file was externally damaged, and silently dropping an
//     acknowledged job would break the durability contract. Open
//     returns a structured *FormatError and the daemon refuses to
//     start, never panics, never guesses.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record kinds.
const (
	KindAdmit  = "admit"  // job acknowledged; Request holds the JobRequest JSON
	KindResult = "result" // job terminal; State + Result hold the outcome
)

// Record is one WAL entry. The payload types (job request, job result)
// are opaque JSON here so this package stays independent of the
// service's wire structs.
type Record struct {
	Kind string `json:"kind"`
	// Job is the admitted-job index the record belongs to.
	Job uint64 `json:"job"`
	// Key is the client-supplied idempotency key, if any. It rides on
	// both record kinds so a compacted log (results only) still
	// supports deduplication.
	Key string `json:"key,omitempty"`
	// Request is the admitted JobRequest (admit records).
	Request json.RawMessage `json:"request,omitempty"`
	// State and Result describe the terminal outcome (result records).
	State  string          `json:"state,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// FormatError reports structural damage in the middle of a WAL — the
// shape a crash cannot produce. It is returned (never panicked) so the
// operator sees exactly where the log stopped making sense.
type FormatError struct {
	Path   string // the damaged file
	Offset int64  // byte offset of the damaged frame
	Msg    string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("durable: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Msg)
}

// SyncMode selects the WAL's durability/throughput trade-off.
type SyncMode int

const (
	// SyncAlways fsyncs after every appended record: an acknowledged
	// job survives kill -9 and power loss. The default.
	SyncAlways SyncMode = iota
	// SyncNone leaves flushing to the OS page cache: an acknowledged
	// job survives a daemon crash but not a machine crash.
	SyncNone
)

// DiskFaults is the deterministic fault hook consulted around every
// write and fsync of the log. *faultinject.Plan implements it
// structurally; nil means no injection.
type DiskFaults interface {
	// DiskWrite may fail the next write; partial means "tear it": half
	// the payload reaches the disk before the error.
	DiskWrite(tag string) (partial bool, err error)
	// DiskSync may fail the next fsync.
	DiskSync(tag string) error
}

// Options configures Open.
type Options struct {
	// Dir is the state directory; the log lives at Dir/wal.log.
	Dir string
	// Sync is the append durability mode (default SyncAlways).
	Sync SyncMode
	// Faults installs deterministic disk fault injection (nil in
	// production).
	Faults DiskFaults
}

// Stats is a point-in-time copy of the store's counters.
type Stats struct {
	// Records is the number of whole records currently in the log.
	Records uint64
	// CorruptTailTruncations counts torn tails truncated at Open.
	CorruptTailTruncations uint64
	// AppendErrors counts failed appends (write or fsync).
	AppendErrors uint64
	// FsyncMaxNs is the slowest fsync observed, in nanoseconds.
	FsyncMaxNs int64
	// Compactions counts successful log rewrites.
	Compactions uint64
}

// Recovered is what Open found on disk.
type Recovered struct {
	// Records are the whole records of the log, in append order.
	Records []Record
	// TailTruncated is true when a torn tail was cut off.
	TailTruncated bool
	// TruncatedBytes is how many trailing bytes were discarded.
	TruncatedBytes int64
}

var fileMagic = []byte("MJWAL1\n\x00")

const (
	walName   = "wal.log"
	frameHdr  = 8        // 4-byte length + 4-byte CRC
	maxRecord = 64 << 20 // a record is one job request/result; 64 MiB is absurd headroom
	diskTag   = "wal"    // the faultinject disk= stream tag
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is an open WAL. All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64 // logical end of the last whole record
	sync   SyncMode
	faults DiskFaults
	stats  Stats
}

// Open replays (and, if needed, repairs) the log under o.Dir and
// returns the live store plus everything recovered. A missing
// directory or file is created; a corrupt middle returns *FormatError
// and no store.
func Open(o Options) (*Store, Recovered, error) {
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, Recovered{}, fmt.Errorf("durable: state dir: %w", err)
	}
	path := filepath.Join(o.Dir, walName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, Recovered{}, fmt.Errorf("durable: read wal: %w", err)
	}

	var rec Recovered
	keep := int64(len(data))
	switch {
	case len(data) == 0:
		keep = 0
	case len(data) < len(fileMagic):
		// The very first write (the magic itself) was torn: nothing was
		// ever acknowledged from this file, so starting over is safe.
		rec.TailTruncated = true
		keep = 0
	case string(data[:len(fileMagic)]) != string(fileMagic):
		return nil, Recovered{}, &FormatError{Path: path, Offset: 0, Msg: "bad file magic"}
	default:
		records, goodEnd, ferr := parse(path, data)
		if ferr != nil {
			return nil, Recovered{}, ferr
		}
		rec.Records = records
		if goodEnd < int64(len(data)) {
			rec.TailTruncated = true
		}
		keep = goodEnd
	}
	rec.TruncatedBytes = int64(len(data)) - keep

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("durable: open wal: %w", err)
	}
	s := &Store{f: f, path: path, sync: o.Sync, faults: o.Faults}
	s.stats.Records = uint64(len(rec.Records))
	if rec.TailTruncated {
		s.stats.CorruptTailTruncations++
	}
	if rec.TruncatedBytes > 0 {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, Recovered{}, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	s.size = keep
	if keep == 0 {
		// Fresh (or reset) log: the magic is durable-write #1, so even
		// the file header follows the fault-injected crash discipline.
		if err := s.writeFrameLocked(fileMagic); err != nil {
			f.Close()
			return nil, Recovered{}, fmt.Errorf("durable: write magic: %w", err)
		}
		s.size = int64(len(fileMagic))
		if err := s.fsyncLocked(); err != nil {
			f.Close()
			return nil, Recovered{}, fmt.Errorf("durable: sync magic: %w", err)
		}
		// Make the file itself durable, not just its contents.
		if err := syncDir(o.Dir); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
	}
	return s, rec, nil
}

// parse walks the framed records after the magic. It returns the
// records of the longest clean prefix and the offset where that prefix
// ends; a corrupt middle returns *FormatError instead.
func parse(path string, data []byte) ([]Record, int64, error) {
	var records []Record
	off := int64(len(fileMagic))
	size := int64(len(data))
	for off < size {
		rec, next, ok := parseFrame(data, off)
		if !ok {
			// Damaged frame. Crash damage can only be terminal, so probe
			// the remainder: any whole valid record after the damage
			// proves this is a corrupt middle, not a torn tail.
			if skip, valid := probeAfter(data, off); valid {
				return nil, 0, &FormatError{
					Path:   path,
					Offset: off,
					Msg: fmt.Sprintf("damaged frame followed by %d valid record(s) — externally corrupted, not a torn tail",
						skip),
				}
			}
			return records, off, nil
		}
		records = append(records, rec)
		off = next
	}
	return records, off, nil
}

// parseFrame decodes one frame at off. ok is false for any damage:
// header torn, frame past EOF, insane length, checksum mismatch, or
// undecodable payload.
func parseFrame(data []byte, off int64) (Record, int64, bool) {
	size := int64(len(data))
	if size-off < frameHdr {
		return Record{}, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n > maxRecord || off+frameHdr+n > size {
		return Record{}, 0, false
	}
	payload := data[off+frameHdr : off+frameHdr+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	if rec.Kind != KindAdmit && rec.Kind != KindResult {
		return Record{}, 0, false
	}
	return rec, off + frameHdr + n, true
}

// probeAfter looks past a damaged frame for surviving records with a
// byte-by-byte resync: a flipped length byte desynchronizes the
// stream (the claimed frame end can overshoot real records), so every
// offset after the damage is a candidate, and any frame whose
// checksum validates over a decodable record proves records survived
// the damage. A random 4-byte CRC match over garbage is a 2^-32
// accident; a WAL that needs the probe at all is already damaged, so
// erring toward the structured refusal is the safe direction.
func probeAfter(data []byte, off int64) (count int, valid bool) {
	size := int64(len(data))
	for cand := off + 1; cand < size; cand++ {
		if _, next, ok := parseFrame(data, cand); ok {
			count = 1
			for next < size {
				_, n2, ok := parseFrame(data, next)
				if !ok {
					break
				}
				count++
				next = n2
			}
			return count, true
		}
	}
	return 0, false
}

// Append frames, writes, and (in SyncAlways mode) fsyncs one record.
// On failure the file is rolled back to the previous record boundary —
// a failed append never leaves a torn frame for the next Open to
// repair unless the process dies before the rollback (which is exactly
// the torn-tail case Open handles).
func (s *Store) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("durable: record is %d bytes, above the %d-byte bound", len(payload), maxRecord)
	}
	frame := make([]byte, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHdr:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeFrameLocked(frame); err != nil {
		s.stats.AppendErrors++
		// Best-effort rollback of any torn bytes; if even this fails the
		// next Open truncates the torn tail itself.
		_ = s.f.Truncate(s.size)
		return err
	}
	if s.sync == SyncAlways {
		if err := s.fsyncLocked(); err != nil {
			s.stats.AppendErrors++
			// Post-fsync-failure page-cache state is unknowable; roll the
			// logical end back and refuse the record.
			_ = s.f.Truncate(s.size)
			return err
		}
	}
	s.size += int64(len(frame))
	s.stats.Records++
	return nil
}

// writeFrameLocked writes b at the logical end of the log, consulting
// the disk fault hook first. A partial (torn) injected failure writes
// half the bytes before reporting the error, exactly like a real torn
// page.
func (s *Store) writeFrameLocked(b []byte) error {
	if s.faults != nil {
		partial, err := s.faults.DiskWrite(diskTag)
		if err != nil {
			if partial {
				s.f.WriteAt(b[:len(b)/2], s.size)
			}
			return fmt.Errorf("durable: write: %w", err)
		}
	}
	if _, err := s.f.WriteAt(b, s.size); err != nil {
		return fmt.Errorf("durable: write: %w", err)
	}
	return nil
}

func (s *Store) fsyncLocked() error {
	start := time.Now()
	if s.faults != nil {
		if err := s.faults.DiskSync(diskTag); err != nil {
			return fmt.Errorf("durable: fsync: %w", err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	if ns := time.Since(start).Nanoseconds(); ns > s.stats.FsyncMaxNs {
		s.stats.FsyncMaxNs = ns
	}
	return nil
}

// Compact atomically rewrites the log to hold exactly keep, via the
// write-temp-then-rename discipline: the old log stays valid until the
// rename, so a crash at any point leaves either the old or the new
// log, never a mix. On error the store keeps operating on the old log.
func (s *Store) Compact(keep []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: compact: %w", err)
	}
	buf := append([]byte(nil), fileMagic...)
	for _, rec := range keep {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fail(err)
		}
		var hdr [frameHdr]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := f.Write(buf); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: compact: %w", err)
	}
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return err
	}
	// The old handle points at the unlinked inode; swap to the new log.
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact: reopen: %w", err)
	}
	s.f.Close()
	s.f = nf
	s.size = int64(len(buf))
	s.stats.Records = uint64(len(keep))
	s.stats.Compactions++
	return nil
}

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close fsyncs (in SyncAlways mode) and closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sync == SyncAlways {
		s.f.Sync()
	}
	return s.f.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed file
// survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}
