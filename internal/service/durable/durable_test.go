package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"racedet/internal/faultinject"
)

func testRecord(i int) Record {
	kind := KindAdmit
	if i%2 == 1 {
		kind = KindResult
	}
	return Record{
		Kind:    kind,
		Job:     uint64(i + 1),
		Key:     fmt.Sprintf("key-%d", i),
		Request: json.RawMessage(fmt.Sprintf(`{"file":"prog-%d.mj","seed":%d}`, i, i)),
	}
}

func mustOpen(t *testing.T, dir string) (*Store, Recovered) {
	t.Helper()
	s, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func writeLog(t *testing.T, dir string, n int) string {
	t.Helper()
	s, _ := mustOpen(t, dir)
	for i := 0; i < n; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, walName)
}

func recordsEqual(a, b Record) bool {
	return a.Kind == b.Kind && a.Job == b.Job && a.Key == b.Key &&
		string(a.Request) == string(b.Request) &&
		a.State == b.State && string(a.Result) == string(b.Result)
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 5)

	s, rec := mustOpen(t, dir)
	defer s.Close()
	if rec.TailTruncated || rec.TruncatedBytes != 0 {
		t.Errorf("clean log reported truncation: %+v", rec)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !recordsEqual(r, testRecord(i)) {
			t.Errorf("record %d = %+v, want %+v", i, r, testRecord(i))
		}
	}
	if st := s.Stats(); st.Records != 5 || st.CorruptTailTruncations != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 2)
	s, rec := mustOpen(t, dir)
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if err := s.Append(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec2 := mustOpen(t, dir)
	defer s2.Close()
	if len(rec2.Records) != 3 {
		t.Fatalf("after reopen+append: %d records, want 3", len(rec2.Records))
	}
}

// TestEveryPrefixTruncation is the acceptance sweep: the log cut off
// at EVERY byte offset must recover cleanly — exactly the whole
// records that fit in the prefix, never an error, never a panic — and
// the repaired store must keep working.
func TestEveryPrefixTruncation(t *testing.T) {
	src := t.TempDir()
	path := writeLog(t, src, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Map each record's end offset so the expected count per prefix is
	// exact, not approximate.
	ends := []int64{int64(len(fileMagic))}
	off := int64(len(fileMagic))
	for off < int64(len(full)) {
		_, next, ok := parseFrame(full, off)
		if !ok {
			t.Fatalf("reference log damaged at %d", off)
		}
		ends = append(ends, next)
		off = next
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 1; i < len(ends); i++ {
			if int64(cut) >= ends[i] {
				want = i
			}
		}
		s, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		if len(rec.Records) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		wantTrunc := int64(cut) != ends[want] && cut != 0
		if rec.TailTruncated != wantTrunc {
			t.Errorf("cut=%d: TailTruncated=%v, want %v", cut, rec.TailTruncated, wantTrunc)
		}
		// The repaired log must accept appends and survive a reopen.
		if err := s.Append(testRecord(99)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		s.Close()
		s2, rec2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if len(rec2.Records) != want+1 {
			t.Fatalf("cut=%d: reopen found %d records, want %d", cut, len(rec2.Records), want+1)
		}
		if !recordsEqual(rec2.Records[want], testRecord(99)) {
			t.Fatalf("cut=%d: appended record damaged", cut)
		}
		s2.Close()
	}
}

// TestEveryByteFlipOfTailRecord is the other acceptance sweep: every
// single-bit-of-a-byte corruption inside the LAST record's frame must
// be treated as a torn tail — truncated at the last whole record,
// counted, never an error.
func TestEveryByteFlipOfTailRecord(t *testing.T) {
	src := t.TempDir()
	path := writeLog(t, src, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last record's frame start.
	off := int64(len(fileMagic))
	tailStart := off
	for off < int64(len(full)) {
		_, next, ok := parseFrame(full, off)
		if !ok {
			t.Fatalf("reference log damaged at %d", off)
		}
		tailStart = off
		off = next
	}

	for i := tailStart; i < int64(len(full)); i++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("flip@%d: Open failed: %v", i, err)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("flip@%d: recovered %d records, want 2 (tail dropped)", i, len(rec.Records))
		}
		if !rec.TailTruncated {
			t.Errorf("flip@%d: truncation not reported", i)
		}
		if st := s.Stats(); st.CorruptTailTruncations != 1 {
			t.Errorf("flip@%d: CorruptTailTruncations = %d, want 1", i, st.CorruptTailTruncations)
		}
		s.Close()
	}
}

// TestMiddleCorruptionIsStructuredError: damage with valid records
// after it cannot come from a crash, so Open must refuse with
// *FormatError instead of silently dropping acknowledged jobs.
func TestMiddleCorruptionIsStructuredError(t *testing.T) {
	src := t.TempDir()
	path := writeLog(t, src, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0's frame spans [magic, end0); flip every byte of it in
	// turn — payload, CRC, or length, each must be detected.
	_, end0, ok := parseFrame(full, int64(len(fileMagic)))
	if !ok {
		t.Fatal("reference log damaged")
	}
	for i := int64(len(fileMagic)); i < end0; i++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(Options{Dir: dir})
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flip@%d: err = %v, want *FormatError", i, err)
		}
		if fe.Offset != int64(len(fileMagic)) {
			t.Errorf("flip@%d: FormatError.Offset = %d, want %d", i, fe.Offset, len(fileMagic))
		}
	}
}

func TestBadMagicIsStructuredError(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1)
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[0] ^= 0xff
	os.WriteFile(path, data, 0o644)
	_, _, err := Open(Options{Dir: dir})
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FormatError", err)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 6)
	s, rec := mustOpen(t, dir)
	keep := rec.Records[4:]
	if err := s.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Records != 2 || st.Compactions != 1 {
		t.Errorf("stats after compact = %+v", st)
	}
	// The compacted store must keep appending on the new file.
	if err := s.Append(testRecord(77)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec2 := mustOpen(t, dir)
	defer s2.Close()
	if len(rec2.Records) != 3 {
		t.Fatalf("after compact+append: %d records, want 3", len(rec2.Records))
	}
	if !recordsEqual(rec2.Records[0], testRecord(4)) || !recordsEqual(rec2.Records[2], testRecord(77)) {
		t.Errorf("compacted records wrong: %+v", rec2.Records)
	}
	if _, err := os.Stat(filepath.Join(dir, walName+".tmp")); !os.IsNotExist(err) {
		t.Error("compact left its temp file behind")
	}
}

func TestInjectedENOSPCRollsBack(t *testing.T) {
	plan, err := faultinject.Parse("enospc:disk=wal,times=1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Op 1 is the magic write of the fresh log... so pre-create first.
	writeLog(t, dir, 1)
	s, _, err := Open(Options{Dir: dir, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err == nil {
		t.Fatal("append under ENOSPC should fail")
	}
	if st := s.Stats(); st.AppendErrors != 1 || st.Records != 1 {
		t.Errorf("stats = %+v, want 1 append error, 1 record", st)
	}
	// The store heals once space is back.
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, rec := mustOpen(t, dir)
	if len(rec.Records) != 2 || rec.TailTruncated {
		t.Fatalf("after ENOSPC rollback: %d records truncated=%v, want 2 clean", len(rec.Records), rec.TailTruncated)
	}
}

func TestInjectedShortWriteLeavesRecoverableTail(t *testing.T) {
	plan, err := faultinject.Parse("shortwrite:disk=wal,at=2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeLog(t, dir, 1)
	s, _, err := Open(Options{Dir: dir, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Op 1: clean append. Op 2: torn halfway. Defeat the in-process
	// rollback by inspecting the file as if the process had died
	// between the torn write and the truncate.
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(2)); err == nil {
		t.Fatal("torn append should report failure")
	}
	s.Close()
	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
}

func TestInjectedFsyncFailure(t *testing.T) {
	plan, err := faultinject.Parse("fsyncfail:disk=wal,times=1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeLog(t, dir, 1)
	s, _, err := Open(Options{Dir: dir, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err == nil {
		t.Fatal("append with failed fsync must not be acknowledged")
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, rec := mustOpen(t, dir)
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
}

func TestFsyncHighWater(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.FsyncMaxNs <= 0 {
		t.Errorf("FsyncMaxNs = %d, want > 0 after a synced append", st.FsyncMaxNs)
	}
}

func TestSyncNoneStillRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	_, rec := mustOpen(t, dir)
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
}

func TestStateDirUnderFileFails(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("Open under a plain file should fail with a structured error")
	}
}
