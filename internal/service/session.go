// Session execution: one admitted job = one isolated detector session.
// The session runner is the daemon's panic barrier — everything from
// compile to report conversion runs behind recover, with retries and
// the Eraser degradation as the last resort.
package service

import (
	"errors"
	"fmt"
	"time"

	"racedet"
	"racedet/internal/rt/trace"
)

// JobRequest is the wire format of one compile+analyze job. Only the
// fields a tenant legitimately varies per job are exposed; the
// operator-owned robustness knobs (watchdogs, retry budgets, journal
// capacity, fact cache) come from the daemon's Options.
type JobRequest struct {
	// File names the program in diagnostics; Source is the MJ text.
	File   string `json:"file"`
	Source string `json:"source"`

	// Trace, when non-empty, is a recorded binary event trace (the
	// bytes of a racedet -record prog.mjtrace file; base64 on the
	// wire). The job replays the trace through the session's detector
	// instead of compiling and running Source — the record-once/
	// analyze-many mode — so Source must be empty. All the detector
	// knobs below apply to the replay exactly as to a live run.
	Trace []byte `json:"trace,omitempty"`

	// Seed perturbs the deterministic scheduler (0 = fixed
	// round-robin), exactly as racedet -seed.
	Seed int64 `json:"seed,omitempty"`
	// Detector selects the runtime algorithm: "trie" (default),
	// "eraser", "objectrace", "hb".
	Detector string `json:"detector,omitempty"`
	// Shards/Batch override the daemon's per-session back-end defaults
	// when > 0; Shards < 0 forces the serial back end for this job.
	Shards int `json:"shards,omitempty"`
	Batch  int `json:"batch,omitempty"`
	// NoStatic disables the static race analysis for this job
	// (instrument everything), as racedet -nostatic.
	NoStatic bool `json:"nostatic,omitempty"`

	// SampleK/SampleBudget override the daemon's per-session adaptive-
	// throttling defaults when > 0, exactly as racedet -sample-k /
	// -sample-budget; SampleK < 0 forces throttling off for this job.
	// SampleBudget outside [0, 1] is rejected at admission.
	SampleK      int     `json:"sample_k,omitempty"`
	SampleBudget float64 `json:"sample_budget,omitempty"`
	// Priors seeds the job's sampler with the program's static
	// lock-discipline tiers ("on" or "invert", exactly as racedet
	// -priors; "" or "off" ignores them). Needs sampling and a source
	// job — rejected at admission for trace jobs, which have no
	// compiled pipeline to take tiers from.
	Priors string `json:"priors,omitempty"`

	// IdempotencyKey, when non-empty, makes the submission safely
	// at-least-once: the first job to present a key runs; any later
	// job with the same key is answered from the first one's result
	// (waiting for it if still in flight), and with a state dir the
	// stored result survives daemon restarts. Keys are client-chosen;
	// two different requests sharing a key get the first one's result.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// JobResult is the wire format of a finished job. Exactly one of the
// three outcomes holds:
//
//   - clean analysis: CompileError and RuntimeError empty, Degraded
//     false; Races/BaselineReports carry the verdicts (possibly none).
//   - failed analysis: CompileError or RuntimeError set; RuntimeError
//     jobs still carry the partial races observed before the failure.
//   - degraded analysis: Degraded true with DegradedReason; the
//     verdicts come from the self-contained Eraser pass after the
//     session's retry budget was exhausted (counted, never silent).
type JobResult struct {
	Job uint64 `json:"job"`

	Races           []racedet.Race `json:"races,omitempty"`
	RacyObjects     int            `json:"racy_objects"`
	BaselineReports []string       `json:"baseline_reports,omitempty"`
	Output          string         `json:"output,omitempty"`

	// Retries counts contained session panics that were retried;
	// Degraded marks a verdict produced by the Eraser fallback after
	// the retry budget ran out.
	Retries        int    `json:"retries,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	// Deduped marks a response served from a stored result because the
	// request repeated an idempotency key; Job then names the original
	// job that produced the verdict, not this submission.
	Deduped bool `json:"deduped,omitempty"`

	// CompileError is a parse/typecheck failure; RuntimeError is an
	// execution failure (deadlock, watchdog, livelock, step budget,
	// panic) with its kind as prefix.
	CompileError string `json:"compile_error,omitempty"`
	RuntimeError string `json:"runtime_error,omitempty"`

	// Stats carries the per-stage counters of the winning run (zero
	// value for compile failures).
	Stats      racedet.Stats `json:"stats"`
	DurationNs int64         `json:"duration_ns"`
}

// jobOptions merges the daemon's per-session defaults with the job's
// own knobs into the one-shot API's Options.
func (s *Server) jobOptions(req JobRequest) racedet.Options {
	o := racedet.Options{
		Seed:                  req.Seed,
		DisableStaticAnalysis: req.NoStatic,
		Timeout:               s.opts.JobTimeout,
		LivelockWindow:        s.opts.LivelockWindow,
		FactCacheDir:          s.opts.FactCacheDir,
		Shards:                s.opts.Shards,
		BatchSize:             s.opts.BatchSize,
	}
	switch {
	case req.Shards > 0:
		o.Shards = req.Shards
	case req.Shards < 0:
		o.Shards = 0
	}
	if req.Batch > 0 {
		o.BatchSize = req.Batch
	}
	o.SampleK = s.opts.SampleK
	o.SampleBudget = s.opts.SampleBudget
	switch {
	case req.SampleK > 0:
		o.SampleK = req.SampleK
	case req.SampleK < 0:
		o.SampleK, o.SampleBudget = 0, 0
	}
	if req.SampleBudget > 0 {
		o.SampleBudget = req.SampleBudget
	}
	o.Priors = req.Priors
	if o.Shards >= 1 {
		o.JournalCap = s.opts.JournalCap
		o.RetryBudget = s.opts.ShardRetryBudget
		// Shard-level faults in the daemon's plan reach each session's
		// sharded back end through the spec (the structural *Plan in
		// Options.Faults is daemon-scoped; per-session state like fault
		// op counters must not be shared across jobs).
		o.FaultInjection = s.opts.DetectorFaultSpec
	}
	o.Detector, _ = detectorFor(req.Detector) // validated at admission
	return o
}

// runSession executes one job with full containment: panics anywhere
// in the session (compile, interpretation, detection, conversion) are
// recovered and retried with exponential backoff until the budget runs
// out, after which the job degrades to the Eraser-only pass. The same
// seed and options make every retry attempt detection-equivalent to a
// clean one-shot run, so a recovered session's verdicts are identical
// to racedet's.
func (s *Server) runSession(job uint64, req JobRequest) JobResult {
	opts := s.jobOptions(req)

	var lastPanic string
	for attempt := 0; attempt <= s.opts.RetryBudget; attempt++ {
		if attempt > 0 {
			s.m.sessionRetries.Add(1)
			// Exponential backoff, capped so an injected panic storm in
			// tests cannot stall a slot for long.
			d := s.opts.RetryBackoff << (attempt - 1)
			if max := 500 * time.Millisecond; d > max {
				d = max
			}
			time.Sleep(d)
		}
		res, err, panicked := s.attempt(job, req, opts, true)
		if panicked {
			s.m.sessionPanics.Add(1)
			lastPanic = res.DegradedReason
			s.logf("job %d: contained session panic (attempt %d/%d): %s",
				job, attempt+1, s.opts.RetryBudget+1, lastPanic)
			continue
		}
		return s.finishResult(res, err, attempt)
	}

	// Budget exhausted: degrade to the self-contained Eraser lockset
	// pass — a simpler, panic-independent detector — so the tenant
	// still gets an explicit verdict instead of a lost analysis.
	eopts := opts
	eopts.Detector = racedet.Eraser
	eopts.Shards = 0
	eopts.BatchSize = 0
	eopts.JournalCap = 0
	eopts.FactCacheDir = "" // the degraded pass must not depend on shared state
	res, err, panicked := s.attempt(job, req, eopts, false)
	if panicked {
		// Even the degraded pass crashed: a structured failure, still
		// counted and journaled.
		return JobResult{
			Degraded:       true,
			DegradedReason: lastPanic,
			Retries:        s.opts.RetryBudget,
			RuntimeError:   "panic: degraded Eraser pass failed too: " + res.DegradedReason,
		}
	}
	out := s.finishResult(res, err, s.opts.RetryBudget)
	out.Degraded = true
	out.DegradedReason = lastPanic
	return out
}

// attempt is the panic barrier around one detection run. withFaults
// arms the injected session fault for this job (the degraded pass runs
// without it: injection tests the recovery path, not the fallback).
// On a panic the returned result carries the panic text in
// DegradedReason and panicked is true.
func (s *Server) attempt(job uint64, req JobRequest, opts racedet.Options, withFaults bool) (res jobOutcome, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res = jobOutcome{}
			res.DegradedReason = fmt.Sprint(r)
			err = nil
			panicked = true
		}
	}()
	if withFaults && s.opts.Faults != nil {
		s.opts.Faults.SessionEvent(job)
	}
	if len(req.Trace) > 0 {
		// Replay job: stream the uploaded trace through this session's
		// detector configuration, no interpreter in the loop. The same
		// panic barrier, retry budget, and Eraser degradation apply.
		r, derr := racedet.ReplayTraceData(req.Trace, opts, 0)
		return jobOutcome{Result: r}, derr, false
	}
	r, derr := racedet.Detect(req.File, req.Source, opts)
	return jobOutcome{Result: r}, derr, false
}

// jobOutcome pairs a detection result with the panic text slot the
// recover path needs (a named return must be assignable in deferred
// code).
type jobOutcome struct {
	Result         *racedet.Result
	DegradedReason string
}

// finishResult converts a completed (non-panicking) attempt into the
// wire result and feeds the daemon-wide metrics.
func (s *Server) finishResult(out jobOutcome, err error, retries int) JobResult {
	jr := JobResult{Retries: retries}
	if err != nil {
		var re *racedet.RuntimeError
		var fe *trace.FormatError
		switch {
		case errors.As(err, &re):
			jr.RuntimeError = re.Kind + ": " + re.Msg
			switch re.Kind {
			case "watchdog":
				s.m.watchdogFires.Add(1)
			case "livelock":
				s.m.livelockFires.Add(1)
			}
		case errors.As(err, &fe):
			// Mid-stream trace corruption that survived the admission
			// check: an execution failure of the replay, not a compile
			// error — partial races observed before it still apply.
			jr.RuntimeError = err.Error()
		default:
			jr.CompileError = err.Error()
		}
	}
	res := out.Result
	if res == nil {
		return jr
	}
	jr.Races = res.Races
	jr.RacyObjects = res.RacyObjects
	jr.BaselineReports = res.BaselineReports
	jr.Output = res.Output
	jr.Stats = res.Stats
	jr.DurationNs = int64(res.Duration)

	s.m.racesReported.Add(uint64(len(res.Races) + len(res.BaselineReports)))
	if res.Stats.FactCacheProgramHit {
		s.m.factProgramHits.Add(1)
	}
	s.m.factFnHits.Add(uint64(res.Stats.FactCacheFnHits))
	s.m.factFnMisses.Add(uint64(res.Stats.FactCacheFnMisses))
	s.m.factWriteErrors.Add(uint64(res.Stats.FactCacheWriteErrors))
	s.m.workerRestarts.Add(res.Stats.WorkerRestarts)
	s.m.eventsReplayed.Add(res.Stats.EventsReplayed)
	s.m.checkpoints.Add(res.Stats.Checkpoints)
	s.m.degradedShards.Add(uint64(res.Stats.DegradedShards))
	s.m.droppedEvents.Add(res.Stats.DroppedEvents)
	s.m.backpressureStalls.Add(res.Stats.BackpressureStalls)
	s.m.eventsShipped.Add(res.Stats.EventsShipped)
	s.m.eventsSuppressed.Add(res.Stats.EventsSuppressed)
	s.m.sitesDemoted.Add(res.Stats.SitesDemoted)
	s.m.sitesRearmed.Add(res.Stats.SitesRearmed)
	s.m.priorHighSites.Add(uint64(res.Stats.PriorHighSites))
	s.m.priorLowSites.Add(uint64(res.Stats.PriorLowSites))
	s.m.priorFastDemotions.Add(res.Stats.PriorFastDemotions)
	return jr
}
