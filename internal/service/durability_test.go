// Service-level durability tests: idempotency keys, the WAL admit
// barrier, restart recovery, drain interaction, and the fact-cache
// degradation — the crash-safety contract as a client observes it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"racedet/internal/service/durable"
)

// stateServer boots a durable Server on dir, runs Recover (as the
// daemon does before serving), and points a client at it.
func stateServer(t *testing.T, dir string, opts Options) (*Server, *Client, RecoveryReport, func()) {
	t.Helper()
	opts.StateDir = dir
	s := New(opts)
	rep, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.Enabled {
		t.Fatal("recovery not enabled despite StateDir")
	}
	ts := httptest.NewServer(s.Handler())
	return s, &Client{Base: ts.URL}, rep, ts.Close
}

func TestIdempotencyKeyDedupes(t *testing.T) {
	s, c, _, stop := stateServer(t, t.TempDir(), Options{})
	defer stop()

	req := JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "job-1"}
	first, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("first analyze: %v", err)
	}
	if first.Deduped || len(first.Races) == 0 {
		t.Fatalf("first submission not a fresh racy run: %+v", first)
	}

	again, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.Deduped {
		t.Fatal("resubmitted key was re-analyzed instead of deduped")
	}
	if again.Job != first.Job {
		t.Errorf("deduped Job = %d, want original %d", again.Job, first.Job)
	}
	if !reflect.DeepEqual(again.Races, first.Races) {
		t.Errorf("stored races differ from original:\n got %+v\nwant %+v", again.Races, first.Races)
	}

	// A different request body under the same key still gets the first
	// job's result — the key is the identity, by contract.
	other, err := c.Analyze(JobRequest{File: "clean.mj", Source: cleanProg, IdempotencyKey: "job-1"})
	if err != nil {
		t.Fatalf("same key, different body: %v", err)
	}
	if !other.Deduped || len(other.Races) == 0 {
		t.Errorf("key identity broken: %+v", other)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["jobs_admitted"] != 3 || m["jobs_completed"] != 1 || m["jobs_deduped"] != 2 {
		t.Errorf("admitted=%d completed=%d deduped=%d, want 3/1/2",
			m["jobs_admitted"], m["jobs_completed"], m["jobs_deduped"])
	}
	// One admit + one result made it to the WAL; dedups append nothing.
	if m["wal_records"] != 2 {
		t.Errorf("wal_records = %d, want 2", m["wal_records"])
	}
	if m["wal_fsync_max_ns"] <= 0 {
		t.Error("fsync high-water not recorded despite SyncAlways appends")
	}
	if got := s.Metrics(); got.Terminal() != got.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", got.Terminal(), got.JobsAdmitted)
	}
}

func TestIdempotencyKeyWorksWithoutStateDir(t *testing.T) {
	// No state dir: keys still dedupe within the process lifetime.
	_, c, stop := newTestServer(t, Options{})
	defer stop()

	req := JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "mem-only"}
	first, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("first analyze: %v", err)
	}
	again, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.Deduped || !reflect.DeepEqual(again.Races, first.Races) {
		t.Errorf("in-memory dedup broken: %+v", again)
	}
}

func TestWalAdmitFailureLoadSheds(t *testing.T) {
	// Disk op 1 is the fresh log's magic; op 2 is the first admit
	// append, which the injected short write tears. The admit barrier
	// must refuse the job with a retryable 503 — never acknowledge an
	// analysis the daemon could not make durable.
	s, c, _, stop := stateServer(t, t.TempDir(), Options{
		RetryAfter: time.Hour, // park retries so the ctx test below owns timing
		Faults:     mustPlan(t, "shortwrite:disk=wal,at=2"),
	})
	defer stop()

	req := JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "torn"}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := c.AnalyzeRetryCtx(ctx, req, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry under an expiring context: err = %v, want deadline exceeded", err)
	}

	// The fault was one-shot: a client retry (at-least-once) succeeds,
	// and the key — dropped when its admit was refused — is claimable.
	res, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("retry after torn admit: %v", err)
	}
	if res.Deduped || len(res.Races) == 0 {
		t.Fatalf("retry did not run fresh: %+v", res)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["wal_append_errors"] != 1 {
		t.Errorf("wal_append_errors = %d, want 1", m["wal_append_errors"])
	}
	if m["jobs_failed"] != 1 || m["jobs_completed"] != 1 {
		t.Errorf("failed=%d completed=%d, want 1/1", m["jobs_failed"], m["jobs_completed"])
	}
	if got := s.Metrics(); got.Terminal() != got.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", got.Terminal(), got.JobsAdmitted)
	}
}

func TestRecoveryRerunsIncompleteJob(t *testing.T) {
	// Simulate a kill -9 after acknowledgment: the WAL holds an admit
	// record with no result. The restarted daemon must re-run it before
	// serving, and the deterministic seed makes the recovered verdict
	// identical to the one the crash destroyed.
	dir := t.TempDir()
	st, _, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncAlways})
	if err != nil {
		t.Fatalf("seeding WAL: %v", err)
	}
	req := JobRequest{File: "racy.mj", Source: racyProg, Seed: 3, IdempotencyKey: "lost"}
	reqJSON, _ := json.Marshal(req)
	if err := st.Append(durable.Record{Kind: durable.KindAdmit, Job: 7, Key: req.IdempotencyKey, Request: reqJSON}); err != nil {
		t.Fatalf("seeding admit: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("closing seed WAL: %v", err)
	}

	s, c, rep, stop := stateServer(t, dir, Options{})
	defer stop()
	if rep.Rerun != 1 || rep.Completed != 0 {
		t.Fatalf("recovery = %+v, want exactly one re-run", rep)
	}

	// The client's retry of the lost acknowledgment is answered from
	// the re-run's stored result, not a third execution.
	res, err := c.Analyze(req)
	if err != nil {
		t.Fatalf("post-recovery resubmit: %v", err)
	}
	if !res.Deduped || res.Job != 7 {
		t.Fatalf("resubmit not served from recovered job 7: %+v", res)
	}
	ref := oneShot(t, "racy.mj", racyProg, 3)
	if !reflect.DeepEqual(res.Races, ref.Races) {
		t.Errorf("recovered races differ from one-shot reference:\n got %+v\nwant %+v", res.Races, ref.Races)
	}

	m := s.Metrics()
	if m.JobsRecovered != 1 || m.JobsDeduped != 1 || m.JobsCompleted != 1 {
		t.Errorf("recovered=%d deduped=%d completed=%d, want 1/1/1",
			m.JobsRecovered, m.JobsDeduped, m.JobsCompleted)
	}
	if m.Terminal() != m.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", m.Terminal(), m.JobsAdmitted)
	}
	// Job indices continue past everything the WAL had seen.
	if next, err := c.Analyze(JobRequest{File: "clean.mj", Source: cleanProg}); err != nil {
		t.Fatalf("post-recovery fresh job: %v", err)
	} else if next.Job <= 7 {
		t.Errorf("fresh job index %d collides with recovered log (max 7)", next.Job)
	}
}

func TestStoredResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, c1, _, stop1 := stateServer(t, dir, Options{})
	req := JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "keep"}
	first, err := c1.Analyze(req)
	if err != nil {
		t.Fatalf("analyze on first boot: %v", err)
	}
	stop1()
	s1.Drain(time.Second) // closes the WAL cleanly

	s2, c2, rep, stop2 := stateServer(t, dir, Options{})
	defer stop2()
	if rep.Completed != 1 || rep.Rerun != 0 {
		t.Fatalf("recovery = %+v, want one restored result and no re-runs", rep)
	}
	res, err := c2.Analyze(req)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if !res.Deduped || res.Job != first.Job {
		t.Fatalf("restart lost the stored result: %+v", res)
	}
	if !reflect.DeepEqual(res.Races, first.Races) {
		t.Errorf("stored races drifted across restart:\n got %+v\nwant %+v", res.Races, first.Races)
	}
	m := s2.Metrics()
	if m.JobsCompleted != 0 || m.JobsDeduped != 1 {
		t.Errorf("completed=%d deduped=%d on second boot, want 0/1 (no re-analysis)", m.JobsCompleted, m.JobsDeduped)
	}
}

func TestRecoveryCompactsLog(t *testing.T) {
	// A keyless completed job is unqueryable after the fact; its two
	// records must compact away at the next boot.
	dir := t.TempDir()
	s1, c1, _, stop1 := stateServer(t, dir, Options{})
	if _, err := c1.Analyze(JobRequest{File: "racy.mj", Source: racyProg}); err != nil {
		t.Fatalf("keyless job: %v", err)
	}
	if _, err := c1.Analyze(JobRequest{File: "clean.mj", Source: cleanProg, IdempotencyKey: "kept"}); err != nil {
		t.Fatalf("keyed job: %v", err)
	}
	stop1()
	s1.Drain(time.Second)

	s2, _, rep, stop2 := stateServer(t, dir, Options{})
	if rep.Replayed != 4 || rep.Completed != 2 {
		t.Fatalf("recovery = %+v, want 4 replayed / 2 completed", rep)
	}
	stop2()
	s2.Drain(time.Second)

	// Third boot sees only the keyed result the compaction kept.
	_, c3, rep3, stop3 := stateServer(t, dir, Options{})
	defer stop3()
	if rep3.Replayed != 1 || rep3.Completed != 1 {
		t.Fatalf("post-compaction recovery = %+v, want exactly the keyed result", rep3)
	}
	res, err := c3.Analyze(JobRequest{File: "clean.mj", Source: cleanProg, IdempotencyKey: "kept"})
	if err != nil || !res.Deduped {
		t.Fatalf("keyed result lost by compaction: res=%+v err=%v", res, err)
	}
}

func TestCorruptWalMiddleRefusesToStart(t *testing.T) {
	dir := t.TempDir()
	s1, c1, _, stop1 := stateServer(t, dir, Options{})
	if _, err := c1.Analyze(JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "a"}); err != nil {
		t.Fatalf("seed job: %v", err)
	}
	stop1()
	s1.Drain(time.Second)

	// Flip a byte in the middle of the log (inside the first record,
	// with a valid record after it): damage no crash can produce.
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{StateDir: dir})
	_, err = s2.Recover()
	var fe *durable.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("Recover on a corrupt-middle WAL: err = %v, want *durable.FormatError", err)
	}
}

func TestFactcacheWriteFailureDegradesJob(t *testing.T) {
	// The fact-cache dir is a regular file: every store fails. The job
	// must still complete cleanly — cache trouble costs warmth, never
	// an analysis — with the degradation counted.
	blocked := filepath.Join(t.TempDir(), "cache")
	if err := os.WriteFile(blocked, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, c, stop := newTestServer(t, Options{FactCacheDir: blocked})
	defer stop()

	res, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg})
	if err != nil {
		t.Fatalf("analyze with broken fact cache: %v", err)
	}
	if res.CompileError != "" || res.RuntimeError != "" || res.Degraded {
		t.Fatalf("broken fact cache failed the job: %+v", res)
	}
	if len(res.Races) == 0 {
		t.Errorf("verdict lost: %+v", res)
	}
	if res.Stats.FactCacheWriteErrors == 0 {
		t.Error("fact-cache degradation not counted in job stats")
	}
	if m := s.Metrics(); m.FactcacheWriteErrors == 0 {
		t.Error("factcache_write_errors metric not incremented")
	}
}

func TestDrainAbortMidReplayLeavesWalIncomplete(t *testing.T) {
	// A trace-replay job is slowed by an injected shard fault, then the
	// daemon drains with a deadline it cannot meet. The job must be
	// counted aborted_at_drain, its WAL admit must stay incomplete, and
	// the restarted daemon must re-run it to the full verdict.
	traceBytes, live := recordTrace(t, "racy.mj", racyProg, 0)

	dir := t.TempDir()
	s1, c1, _, stop1 := stateServer(t, dir, Options{
		Shards:            2,
		DetectorFaultSpec: "slow:shard=*,every=1,delay=50ms",
	})

	req := JobRequest{File: "racy.mj", Trace: traceBytes, IdempotencyKey: "replay"}
	go c1.Analyze(req) // the response is lost to the drain; the WAL is the test

	deadline := time.Now().Add(5 * time.Second)
	for s1.Metrics().TraceJobs == 0 || s1.Metrics().SessionsActive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replay job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := s1.Drain(20 * time.Millisecond)
	if rep.Clean || len(rep.Aborted) != 1 {
		t.Fatalf("drain = %+v, want one aborted job", rep)
	}
	m1 := s1.Metrics()
	if m1.JobsAbortedAtDrain != 1 {
		t.Fatalf("jobs_aborted_at_drain = %d, want 1", m1.JobsAbortedAtDrain)
	}
	if m1.Terminal() != m1.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d after unclean drain", m1.Terminal(), m1.JobsAdmitted)
	}
	stop1()

	// Restart without the slow fault: the incomplete admit re-runs and
	// the lost client's retry is served from the recovered result.
	s2, c2, rec, stop2 := stateServer(t, dir, Options{Shards: 2})
	defer stop2()
	if rec.Rerun != 1 {
		t.Fatalf("recovery = %+v, want the aborted job re-run", rec)
	}
	res, err := c2.Analyze(req)
	if err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	if !res.Deduped {
		t.Fatalf("retry re-analyzed instead of using the recovered result: %+v", res)
	}
	// Replay has no source to attribute static partners to; compare the
	// dynamic verdict (same strip the live trace tests use).
	if !reflect.DeepEqual(res.Races, stripPartners(live.Races)) {
		t.Errorf("recovered replay races differ from the live run:\n got %+v\nwant %+v", res.Races, live.Races)
	}
	if m := s2.Metrics(); m.JobsRecovered != 1 {
		t.Errorf("jobs_recovered = %d, want 1", m.JobsRecovered)
	}
}

func TestRetryDelayJitterBounds(t *testing.T) {
	d := 10 * time.Second
	for i := 0; i < 1000; i++ {
		got := retryDelay(d)
		if got < d/2 || got >= d+d/2 {
			t.Fatalf("retryDelay(%v) = %v, outside [%v, %v)", d, got, d/2, d+d/2)
		}
	}
	if retryDelay(0) != 0 {
		t.Error("retryDelay(0) != 0")
	}
}
