package service

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// metrics is the daemon's live counter set. Every field is atomic so
// session goroutines, the admission path, and the /metrics scraper
// never contend on a lock; Snapshot() gives tests and the exporter a
// consistent-enough view (individual counters are exact, cross-counter
// sums can be mid-transition only while jobs are still in flight).
type metrics struct {
	// Admission.
	jobsAdmitted         atomic.Uint64 // sessions that got a slot
	jobsShed             atomic.Uint64 // load-shed with Retry-After (queue full)
	jobsRejectedDraining atomic.Uint64 // refused because the daemon is draining

	// Terminal job states. Every admitted job ends in exactly one of
	// these (or jobsAbortedAtDrain); the drain tests assert the sum.
	jobsCompleted      atomic.Uint64 // clean analysis (racy or not)
	jobsFailed         atomic.Uint64 // compile error, bad request, runtime failure
	jobsDegraded       atomic.Uint64 // retry budget exhausted, Eraser-only verdict
	jobsAbortedAtDrain atomic.Uint64 // still running when the drain deadline hit
	jobsDeduped        atomic.Uint64 // served a stored result for a repeated idempotency key

	// Durability (the -state-dir WAL; see internal/service/durable).
	// WAL-level counters (records, append errors, fsync high-water)
	// live in the store itself and are merged in by Server.Metrics.
	jobsRecovered   atomic.Uint64 // admitted-but-incomplete jobs re-run at startup
	factWriteErrors atomic.Uint64 // fact-cache stores that degraded to cache-off

	// Session robustness.
	sessionPanics  atomic.Uint64 // contained panics inside session runners
	sessionRetries atomic.Uint64 // retry attempts after contained panics
	watchdogFires  atomic.Uint64 // per-job wall-clock watchdog expiries
	livelockFires  atomic.Uint64 // per-job livelock detections

	// Client behavior.
	clientDisconnects atomic.Uint64 // jobs whose client vanished mid-request
	slowClientStalls  atomic.Uint64 // injected slow-client stalls honored

	// Queueing gauges.
	sessionsActive atomic.Int64
	sessionsPeak   atomic.Int64
	queueWaiting   atomic.Int64
	queueHighWater atomic.Int64

	// Detection outcomes.
	racesReported atomic.Uint64
	traceJobs     atomic.Uint64 // admitted jobs replaying an uploaded trace

	// Shared fact cache (aggregated across sessions).
	factProgramHits atomic.Uint64
	factFnHits      atomic.Uint64
	factFnMisses    atomic.Uint64

	// Sharded back-end recovery, aggregated across all sessions' runs.
	workerRestarts     atomic.Uint64
	eventsReplayed     atomic.Uint64
	checkpoints        atomic.Uint64
	degradedShards     atomic.Uint64
	droppedEvents      atomic.Uint64
	backpressureStalls atomic.Uint64

	// Adaptive throttling, aggregated across all sessions' runs. Per
	// run the filter accounts for every observed event exactly once:
	// observed == shipped + cache hits + owner skips + suppressed, so
	// events_suppressed here is work the trie never had to do.
	eventsShipped    atomic.Uint64
	eventsSuppressed atomic.Uint64
	sitesDemoted     atomic.Uint64
	sitesRearmed     atomic.Uint64

	// Static lock-discipline priors, aggregated across all sessions'
	// sampled runs that enabled them.
	priorHighSites     atomic.Uint64
	priorLowSites      atomic.Uint64
	priorFastDemotions atomic.Uint64

	draining atomic.Bool
}

// maxInt64 raises a gauge's high-water mark without locking.
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of the daemon's counters, exposed
// for tests and the /metrics endpoint. Field names match the exported
// metric names (snake_case, racedetd_ prefix).
type Snapshot struct {
	JobsAdmitted         uint64
	JobsShed             uint64
	JobsRejectedDraining uint64
	JobsCompleted        uint64
	JobsFailed           uint64
	JobsDegraded         uint64
	JobsAbortedAtDrain   uint64
	JobsDeduped          uint64

	// Durability. The Wal* gauges mirror the live WAL store; they are
	// zero when the daemon runs without -state-dir.
	JobsRecovered        uint64
	WalRecords           uint64
	WalCorruptTailTrunc  uint64
	WalAppendErrors      uint64
	WalFsyncMaxNs        int64
	FactcacheWriteErrors uint64

	SessionPanics  uint64
	SessionRetries uint64
	WatchdogFires  uint64
	LivelockFires  uint64

	ClientDisconnects uint64
	SlowClientStalls  uint64

	SessionsActive int64
	SessionsPeak   int64
	QueueWaiting   int64
	QueueHighWater int64

	RacesReported uint64
	TraceJobs     uint64

	FactProgramHits uint64
	FactFnHits      uint64
	FactFnMisses    uint64

	WorkerRestarts     uint64
	EventsReplayed     uint64
	Checkpoints        uint64
	DegradedShards     uint64
	DroppedEvents      uint64
	BackpressureStalls uint64

	EventsShipped    uint64
	EventsSuppressed uint64
	SitesDemoted     uint64
	SitesRearmed     uint64

	PriorHighSites     uint64
	PriorLowSites      uint64
	PriorFastDemotions uint64

	Draining bool
}

// Terminal is the number of admitted jobs that reached a terminal
// state. A drained daemon must satisfy Terminal == JobsAdmitted: no
// admitted job may ever be dropped without a counted outcome. A
// deduplicated job (stored result served for a repeated idempotency
// key) is terminal too — it was admitted, occupied a slot, and ended.
func (s Snapshot) Terminal() uint64 {
	return s.JobsCompleted + s.JobsFailed + s.JobsDegraded + s.JobsAbortedAtDrain + s.JobsDeduped
}

func (m *metrics) snapshot() Snapshot {
	return Snapshot{
		JobsAdmitted:         m.jobsAdmitted.Load(),
		JobsShed:             m.jobsShed.Load(),
		JobsRejectedDraining: m.jobsRejectedDraining.Load(),
		JobsCompleted:        m.jobsCompleted.Load(),
		JobsFailed:           m.jobsFailed.Load(),
		JobsDegraded:         m.jobsDegraded.Load(),
		JobsAbortedAtDrain:   m.jobsAbortedAtDrain.Load(),
		JobsDeduped:          m.jobsDeduped.Load(),
		JobsRecovered:        m.jobsRecovered.Load(),
		FactcacheWriteErrors: m.factWriteErrors.Load(),
		SessionPanics:        m.sessionPanics.Load(),
		SessionRetries:       m.sessionRetries.Load(),
		WatchdogFires:        m.watchdogFires.Load(),
		LivelockFires:        m.livelockFires.Load(),
		ClientDisconnects:    m.clientDisconnects.Load(),
		SlowClientStalls:     m.slowClientStalls.Load(),
		SessionsActive:       m.sessionsActive.Load(),
		SessionsPeak:         m.sessionsPeak.Load(),
		QueueWaiting:         m.queueWaiting.Load(),
		QueueHighWater:       m.queueHighWater.Load(),
		RacesReported:        m.racesReported.Load(),
		TraceJobs:            m.traceJobs.Load(),
		FactProgramHits:      m.factProgramHits.Load(),
		FactFnHits:           m.factFnHits.Load(),
		FactFnMisses:         m.factFnMisses.Load(),
		WorkerRestarts:       m.workerRestarts.Load(),
		EventsReplayed:       m.eventsReplayed.Load(),
		Checkpoints:          m.checkpoints.Load(),
		DegradedShards:       m.degradedShards.Load(),
		DroppedEvents:        m.droppedEvents.Load(),
		BackpressureStalls:   m.backpressureStalls.Load(),
		EventsShipped:        m.eventsShipped.Load(),
		EventsSuppressed:     m.eventsSuppressed.Load(),
		SitesDemoted:         m.sitesDemoted.Load(),
		SitesRearmed:         m.sitesRearmed.Load(),
		PriorHighSites:       m.priorHighSites.Load(),
		PriorLowSites:        m.priorLowSites.Load(),
		PriorFastDemotions:   m.priorFastDemotions.Load(),
		Draining:             m.draining.Load(),
	}
}

// WriteTo renders the snapshot in the Prometheus text exposition
// style: one "racedetd_<name> <value>" line per counter, sorted by
// name so scrapes are byte-stable for a stable counter state.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	lines := map[string]int64{
		"jobs_admitted":                int64(s.JobsAdmitted),
		"jobs_shed":                    int64(s.JobsShed),
		"jobs_rejected_draining":       int64(s.JobsRejectedDraining),
		"jobs_completed":               int64(s.JobsCompleted),
		"jobs_failed":                  int64(s.JobsFailed),
		"jobs_degraded":                int64(s.JobsDegraded),
		"jobs_aborted_at_drain":        int64(s.JobsAbortedAtDrain),
		"jobs_deduped":                 int64(s.JobsDeduped),
		"jobs_recovered":               int64(s.JobsRecovered),
		"wal_records":                  int64(s.WalRecords),
		"wal_corrupt_tail_truncations": int64(s.WalCorruptTailTrunc),
		"wal_append_errors":            int64(s.WalAppendErrors),
		"wal_fsync_max_ns":             s.WalFsyncMaxNs,
		"factcache_write_errors":       int64(s.FactcacheWriteErrors),
		"session_panics":               int64(s.SessionPanics),
		"session_retries":              int64(s.SessionRetries),
		"watchdog_fires":               int64(s.WatchdogFires),
		"livelock_fires":               int64(s.LivelockFires),
		"client_disconnects":           int64(s.ClientDisconnects),
		"slow_client_stalls":           int64(s.SlowClientStalls),
		"sessions_active":              s.SessionsActive,
		"sessions_peak":                s.SessionsPeak,
		"queue_waiting":                s.QueueWaiting,
		"queue_high_water":             s.QueueHighWater,
		"races_reported":               int64(s.RacesReported),
		"trace_jobs":                   int64(s.TraceJobs),
		"factcache_program_hits":       int64(s.FactProgramHits),
		"factcache_fn_hits":            int64(s.FactFnHits),
		"factcache_fn_misses":          int64(s.FactFnMisses),
		"worker_restarts":              int64(s.WorkerRestarts),
		"events_replayed":              int64(s.EventsReplayed),
		"checkpoints":                  int64(s.Checkpoints),
		"degraded_shards":              int64(s.DegradedShards),
		"dropped_events":               int64(s.DroppedEvents),
		"backpressure_stalls":          int64(s.BackpressureStalls),
		"events_shipped":               int64(s.EventsShipped),
		"events_suppressed":            int64(s.EventsSuppressed),
		"sites_demoted":                int64(s.SitesDemoted),
		"sites_rearmed":                int64(s.SitesRearmed),
		"prior_high_sites":             int64(s.PriorHighSites),
		"prior_low_sites":              int64(s.PriorLowSites),
		"prior_fast_demotions":         int64(s.PriorFastDemotions),
		"draining":                     int64(b(s.Draining)),
	}
	names := make([]string, 0, len(lines))
	for n := range lines {
		names = append(names, n)
	}
	sort.Strings(names)
	var total int64
	for _, n := range names {
		nn, err := fmt.Fprintf(w, "racedetd_%s %d\n", n, lines[n])
		total += int64(nn)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
