// Tests for the daemon's trace-replay job mode: record once with the
// one-shot API, upload the bytes, and get the live run's verdicts back
// from any detector configuration without recompiling or re-running.
package service

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"racedet"
)

// stripPartners clears the StaticPartners hints, which come from the
// compile-time static analysis and are deliberately not part of a
// recorded trace — everything else must match the live run exactly.
func stripPartners(races []racedet.Race) []racedet.Race {
	out := append([]racedet.Race(nil), races...)
	for i := range out {
		out[i].StaticPartners = nil
	}
	return out
}

// recordTrace runs the program through the one-shot API with trace
// recording on and returns the trace bytes plus the live result.
func recordTrace(t *testing.T, file, src string, seed int64) ([]byte, *racedet.Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := racedet.Detect(file, src, racedet.Options{Seed: seed, TraceTo: &buf})
	if err != nil {
		t.Fatalf("recording Detect(%s): %v", file, err)
	}
	return buf.Bytes(), res
}

func TestTraceJobMatchesSourceJob(t *testing.T) {
	s, c, stop := newTestServer(t, Options{})
	defer stop()

	data, live := recordTrace(t, "racy.mj", racyProg, 0)

	src, err := c.Analyze(JobRequest{File: "racy.mj", Source: racyProg})
	if err != nil {
		t.Fatalf("source job: %v", err)
	}
	for _, cfg := range []JobRequest{
		{File: "racy.mjtrace", Trace: data},
		{File: "racy.mjtrace", Trace: data, Shards: 4},
		{File: "racy.mjtrace", Trace: data, Shards: -1},
		{File: "racy.mjtrace", Trace: data, Shards: 2, Batch: 64},
	} {
		res, err := c.Analyze(cfg)
		if err != nil {
			t.Fatalf("trace job (shards=%d): %v", cfg.Shards, err)
		}
		if res.CompileError != "" || res.RuntimeError != "" || res.Degraded {
			t.Fatalf("trace job not clean: %+v", res)
		}
		if !reflect.DeepEqual(res.Races, stripPartners(src.Races)) {
			t.Errorf("trace job races (shards=%d):\n got %+v\nwant %+v", cfg.Shards, res.Races, src.Races)
		}
		if len(res.Races) == 0 || res.Races[0].Field != "Data.f" {
			t.Errorf("trace job lost the race: %+v", res.Races)
		}
	}
	if len(live.Races) == 0 {
		t.Errorf("recording run lost the race: %+v", live)
	}

	// A clean program's trace replays clean.
	cdata, _ := recordTrace(t, "clean.mj", cleanProg, 0)
	res, err := c.Analyze(JobRequest{File: "clean.mjtrace", Trace: cdata})
	if err != nil {
		t.Fatalf("clean trace job: %v", err)
	}
	if len(res.Races) != 0 {
		t.Errorf("clean trace reported races: %+v", res.Races)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["trace_jobs"] != 5 {
		t.Errorf("trace_jobs = %d, want 5", m["trace_jobs"])
	}
	if got := s.Metrics(); got.Terminal() != got.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d", got.Terminal(), got.JobsAdmitted)
	}
}

// TestTraceJobDetectorSelection replays one trace through every wire
// detector name — the analyze-many half of record-once/analyze-many.
func TestTraceJobDetectorSelection(t *testing.T) {
	_, c, stop := newTestServer(t, Options{})
	defer stop()

	data, _ := recordTrace(t, "racy.mj", racyProg, 0)
	for _, det := range []string{"", "trie", "eraser", "objectrace", "hb"} {
		res, err := c.Analyze(JobRequest{File: "racy.mjtrace", Trace: data, Detector: det})
		if err != nil {
			t.Fatalf("detector %q: %v", det, err)
		}
		racy := len(res.Races) > 0 || len(res.BaselineReports) > 0
		if !racy {
			t.Errorf("detector %q missed the race on the replayed trace: %+v", det, res)
		}
	}
}

func TestTraceJobBadRequests(t *testing.T) {
	s, c, stop := newTestServer(t, Options{MaxTraceBytes: 1 << 10})
	defer stop()

	data, _ := recordTrace(t, "racy.mj", racyProg, 0)

	cases := []struct {
		name string
		req  JobRequest
		want string // error fragment
	}{
		{"trace and source", JobRequest{Source: racyProg, Trace: data}, "mutually exclusive"},
		{"oversized trace", JobRequest{Trace: bytes.Repeat(data, 1+(1<<10)/len(data))}, "byte limit"},
		{"truncated trace", JobRequest{Trace: data[:len(data)/2]}, "truncated or unfinalized"},
		{"garbage trace", JobRequest{Trace: []byte(strings.Repeat("not a trace. ", 8))}, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Analyze(tc.req)
			if err == nil {
				t.Fatal("bad trace job accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}

	m := s.Metrics()
	if m.TraceJobs != 0 {
		t.Errorf("rejected jobs counted as trace jobs: %d", m.TraceJobs)
	}
	if m.JobsFailed != uint64(len(cases)) || m.Terminal() != m.JobsAdmitted {
		t.Errorf("failed=%d terminal=%d admitted=%d, want %d bad-request terminals",
			m.JobsFailed, m.Terminal(), m.JobsAdmitted, len(cases))
	}
	for _, j := range s.Jobs() {
		if j.State != StateBadRequest {
			t.Errorf("journal %+v, want bad-request", j)
		}
	}
}
