// Crash recovery and idempotency: the service side of the durable WAL
// (internal/service/durable). With Options.StateDir set, every
// admitted job is fsync'd to the log before the client can see an
// acknowledgment, and Server.Recover — which the daemon runs before
// serving — replays the log after an ungraceful death:
//
//   - admit + result  → the job completed; a keyed result stays
//     servable, so resubmitting its idempotency key returns the stored
//     verdict without running anything.
//   - admit only      → the job was acknowledged but never finished
//     (kill -9 mid-analysis, or aborted at a drain deadline). It
//     re-runs through the normal session path; the deterministic
//     scheduler makes the re-run verdict byte-identical to the one the
//     crash destroyed.
//   - neither         → the job was never acknowledged; the client's
//     retry (Client.AnalyzeRetry is at-least-once) is the recovery.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"racedet/internal/service/durable"
)

// RecoveryReport summarizes what Server.Recover found and did.
type RecoveryReport struct {
	// Enabled is false when the server runs without a state dir.
	Enabled bool
	// Replayed counts whole WAL records found on disk.
	Replayed int
	// Completed counts jobs whose stored results were restored (keyed
	// ones become servable by idempotency key).
	Completed int
	// Rerun counts admitted-but-incomplete jobs re-executed now.
	Rerun int
	// Deduped counts incomplete jobs skipped because an earlier job
	// with the same idempotency key already ran.
	Deduped int
	// TailTruncated/TruncatedBytes report a torn tail cut off at open
	// (the normal aftermath of a crash mid-append).
	TailTruncated  bool
	TruncatedBytes int64
}

// Recover opens the durable job journal and replays it: it must be
// called once, before the server starts serving, whenever StateDir is
// set. Incomplete jobs re-run synchronously here — the daemon comes up
// only after every acknowledged job has a result again. A corrupt
// middle of the WAL (damage no crash can produce) returns the
// structured *durable.FormatError and the daemon must not start.
func (s *Server) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	if !s.recovered.CompareAndSwap(false, true) {
		return rep, fmt.Errorf("service: Recover called twice")
	}
	if s.opts.StateDir == "" {
		return rep, nil
	}
	var mode durable.SyncMode
	switch s.opts.WalSync {
	case "always":
		mode = durable.SyncAlways
	case "none":
		mode = durable.SyncNone
	default:
		return rep, fmt.Errorf("service: unknown WalSync %q (want \"always\" or \"none\")", s.opts.WalSync)
	}
	var faults durable.DiskFaults
	if s.opts.Faults != nil {
		faults = s.opts.Faults
	}
	store, recv, err := durable.Open(durable.Options{Dir: s.opts.StateDir, Sync: mode, Faults: faults})
	if err != nil {
		return rep, err
	}
	s.store = store
	rep.Enabled = true
	rep.Replayed = len(recv.Records)
	rep.TailTruncated = recv.TailTruncated
	rep.TruncatedBytes = recv.TruncatedBytes

	// Index the log. Job indices continue past everything the log has
	// seen, so new admissions never collide with stored records.
	completed := make(map[uint64]bool)
	var maxJob uint64
	for _, r := range recv.Records {
		if r.Job > maxJob {
			maxJob = r.Job
		}
		if r.Kind == durable.KindResult {
			completed[r.Job] = true
		}
	}
	s.seq.Store(maxJob)

	// keep is the compacted log: stored results of keyed jobs (their
	// admit records are redundant — the result alone carries the key
	// and verdict) plus the results of jobs re-run below. Keyless
	// completed jobs are unqueryable after the fact and compact away.
	var keep []durable.Record
	for _, r := range recv.Records {
		if r.Kind != durable.KindResult {
			continue
		}
		rep.Completed++
		if r.Key == "" {
			continue
		}
		var res JobResult
		if err := json.Unmarshal(r.Result, &res); err != nil {
			// The record passed its checksum, so this is a version skew
			// or a bug, not disk damage; the job is complete either way.
			s.logf("recover: job %d: undecodable stored result dropped: %v", r.Job, err)
			continue
		}
		s.publishStored(r.Key, r.Job, &res, jobState(r.State))
		keep = append(keep, r)
	}

	// Re-run incomplete jobs in admit order through the same journal,
	// session, metrics, and WAL paths a live request takes.
	for _, r := range recv.Records {
		if r.Kind != durable.KindAdmit || completed[r.Job] {
			continue
		}
		var req JobRequest
		if err := json.Unmarshal(r.Request, &req); err != nil {
			s.logf("recover: job %d: undecodable admit record dropped: %v", r.Job, err)
			continue
		}
		if req.IdempotencyKey != "" {
			if _, isNew := s.claimKey(req.IdempotencyKey, r.Job); !isNew {
				// A duplicate admission of a key that already has (or just
				// re-ran) an owner: terminal as deduped, nothing to run.
				s.m.jobsAdmitted.Add(1)
				s.journalStart(r.Job, req.File)
				if s.journalFinish(r.Job, StateDeduped, 0) {
					s.m.jobsDeduped.Add(1)
				}
				rep.Deduped++
				continue
			}
		}
		keep = append(keep, s.rerun(r.Job, req))
		rep.Rerun++
	}

	// Compact: the re-written log holds only what future boots need.
	if len(keep) != rep.Replayed {
		if err := s.store.Compact(keep); err != nil {
			// Non-fatal: the uncompacted log is still correct, just big.
			s.logf("recover: compaction failed (log kept as-is): %v", err)
		}
	}
	s.logf("recovered: replayed=%d completed=%d rerun=%d deduped=%d tail_truncated=%v",
		rep.Replayed, rep.Completed, rep.Rerun, rep.Deduped, rep.TailTruncated)
	return rep, nil
}

// rerun executes one recovered job through the normal lifecycle and
// returns its result record for the compacted log.
func (s *Server) rerun(job uint64, req JobRequest) durable.Record {
	s.m.jobsAdmitted.Add(1)
	s.m.jobsRecovered.Add(1)
	s.journalStart(job, req.File)
	if len(req.Trace) > 0 {
		s.m.traceJobs.Add(1)
	}
	res := s.runSession(job, req)
	res.Job = job
	state := terminalState(res)
	if s.journalFinish(job, state, len(res.Races)+len(res.BaselineReports)) {
		switch state {
		case StateDegraded:
			s.m.jobsDegraded.Add(1)
		case StateFailed:
			s.m.jobsFailed.Add(1)
		default:
			s.m.jobsCompleted.Add(1)
		}
	}
	if err := s.appendResult(job, req.IdempotencyKey, state, res); err != nil {
		s.logf("recover: job %d: WAL result append failed (re-runs again next boot): %v", job, err)
	}
	if req.IdempotencyKey != "" {
		s.keyMu.Lock()
		ent := s.byKey[req.IdempotencyKey]
		s.keyMu.Unlock()
		if ent != nil && ent.job == job {
			s.resolveKey(ent, res, state)
		}
	}
	s.logf("recover: job %d: file=%q state=%s races=%d (re-run of a lost job)",
		job, req.File, state, len(res.Races))
	resJSON, err := json.Marshal(res)
	if err != nil {
		resJSON = nil
	}
	return durable.Record{
		Kind:   durable.KindResult,
		Job:    job,
		Key:    req.IdempotencyKey,
		State:  string(state),
		Result: resJSON,
	}
}

// terminalState maps a finished session result to its journal state.
func terminalState(res JobResult) jobState {
	switch {
	case res.Degraded:
		return StateDegraded
	case res.CompileError != "" || res.RuntimeError != "":
		return StateFailed
	}
	return StateCompleted
}

// ---------------------------------------------------------------------------
// WAL append helpers

func (s *Server) appendAdmit(job uint64, req JobRequest) error {
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return s.store.Append(durable.Record{
		Kind:    durable.KindAdmit,
		Job:     job,
		Key:     req.IdempotencyKey,
		Request: reqJSON,
	})
}

func (s *Server) appendResult(job uint64, key string, state jobState, res JobResult) error {
	resJSON, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return s.store.Append(durable.Record{
		Kind:   durable.KindResult,
		Job:    job,
		Key:    key,
		State:  string(state),
		Result: resJSON,
	})
}

// ---------------------------------------------------------------------------
// Idempotency keys

// claimKey registers a key's owning job. isNew is false when the key
// already has an owner — the caller must answer from that entry
// instead of running a session.
func (s *Server) claimKey(key string, job uint64) (e *keyEntry, isNew bool) {
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	if e, ok := s.byKey[key]; ok {
		return e, false
	}
	e = &keyEntry{job: job, done: make(chan struct{})}
	s.byKey[key] = e
	return e, true
}

// resolveKey publishes the owner's result and wakes every waiting
// duplicate. Called exactly once per claimed entry.
func (s *Server) resolveKey(e *keyEntry, res JobResult, state jobState) {
	s.keyMu.Lock()
	e.res = &res
	e.state = state
	s.keyMu.Unlock()
	close(e.done)
}

// publishStored registers an already-resolved entry (a result replayed
// from the WAL at recovery).
func (s *Server) publishStored(key string, job uint64, res *JobResult, state jobState) {
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	if _, ok := s.byKey[key]; ok {
		return
	}
	done := make(chan struct{})
	close(done)
	s.byKey[key] = &keyEntry{job: job, done: done, res: res, state: state}
}

// dropKey forgets a claimed key whose admit the WAL refused: nothing
// durable references it, so a client retry must be able to claim it
// fresh. Waiting duplicates wake to a nil result and load-shed.
func (s *Server) dropKey(key string, e *keyEntry) {
	if e == nil {
		return
	}
	s.keyMu.Lock()
	if s.byKey[key] == e {
		delete(s.byKey, key)
	}
	s.keyMu.Unlock()
	close(e.done)
}

// serveDuplicate answers an admitted job that repeated an existing
// idempotency key: wait for the original (if still in flight), then
// return its stored result. The duplicate occupies its session slot
// while waiting — bounded by admission control like any job.
func (s *Server) serveDuplicate(w http.ResponseWriter, r *http.Request, job uint64, req JobRequest, e *keyEntry) {
	select {
	case <-e.done:
	case <-r.Context().Done():
		if s.journalFinish(job, StateFailed, 0) {
			s.m.jobsFailed.Add(1)
		}
		s.m.clientDisconnects.Add(1)
		return
	}
	s.keyMu.Lock()
	res := e.res
	s.keyMu.Unlock()
	if res == nil {
		// The original's admit was refused by the WAL after we started
		// waiting; shed so the client retries into a fresh claim.
		if s.journalFinish(job, StateFailed, 0) {
			s.m.jobsFailed.Add(1)
		}
		http.Error(w, "durability unavailable: original submission was not admitted",
			http.StatusServiceUnavailable)
		return
	}
	races := len(res.Races) + len(res.BaselineReports)
	if s.journalFinish(job, StateDeduped, races) {
		s.m.jobsDeduped.Add(1)
	}
	s.logf("job %d: file=%q state=%s key=%q (stored result of job %d)",
		job, req.File, StateDeduped, req.IdempotencyKey, e.job)
	out := *res
	out.Deduped = true
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// Recovered reports whether Recover already ran (used by tests).
func (s *Server) Recovered() bool { return s.recovered.Load() }
