// Package service is the detection-as-a-service layer: a persistent,
// multi-session daemon core that accepts compile+analyze jobs from
// many concurrent clients over a local HTTP API and runs each one in
// an isolated, supervised detector session.
//
// Robustness is the organizing principle, assembled from the pieces
// the one-shot pipeline already has:
//
//   - Isolation. Every job compiles and runs in its own session with
//     its own detector back end (interner, trie, ownership table), so
//     sessions share no mutable detection state. A panic inside a
//     session is contained, counted, retried with exponential backoff
//     within a budget, and finally degraded to the self-contained
//     Eraser lockset pass — a crashed session returns a structured
//     error or an explicitly-degraded verdict, never takes a sibling
//     (or the daemon) down, and never loses an analysis silently.
//   - Admission control. Session slots are bounded and a bounded
//     queue fronts them; past both bounds the daemon load-sheds with
//     HTTP 503 + Retry-After instead of growing without bound,
//     mirroring the sharded back end's router backpressure.
//   - Watchdogs. Each job runs under the wall-clock and livelock
//     watchdogs of the fuzzing harness; a fired watchdog fails only
//     that job — with a partial race report — and is counted.
//   - Shared warmth. All sessions share one digest-keyed fact cache
//     directory, so a program any session compiled before replays its
//     static analysis instead of recomputing it; hit rates are
//     exported.
//   - Graceful drain. Drain stops admission, lets in-flight jobs
//     finish (or counts them aborted at the deadline — never a silent
//     drop, asserted via the job journal), and reports whether the
//     drain was clean.
//
// The /healthz and /metrics endpoints expose liveness and the full
// counter set (queue depths, recovery and degradation counters,
// watchdog fires, fact-cache hit rates) for operators and the CI
// smoke test. Deterministic fault injection (session panics, client
// disconnects, slow clients, forced queue-full) plugs in through
// internal/faultinject's session-level faults.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"racedet"
	"racedet/internal/faultinject"
	"racedet/internal/rt/trace"
	"racedet/internal/service/durable"
)

// Options configures a Server. The zero value of any field selects the
// documented default.
type Options struct {
	// MaxSessions bounds concurrently running analysis sessions
	// (default: GOMAXPROCS).
	MaxSessions int
	// QueueDepth bounds jobs waiting for a session slot; a job arriving
	// past the bound is load-shed with 503 + Retry-After (default 16).
	QueueDepth int
	// RetryAfter is the hint returned with load-shed responses
	// (default 1s).
	RetryAfter time.Duration

	// JobTimeout is the per-job wall-clock watchdog (default 30s); a
	// job that exceeds it fails with a watchdog error and a partial
	// report, like racedet -timeout. 0 keeps the default; negative
	// disables.
	JobTimeout time.Duration
	// LivelockWindow is the per-job livelock watchdog in scheduler
	// slices (default 100000; negative disables).
	LivelockWindow int

	// RetryBudget is the number of times a session that panicked is
	// re-run before it degrades to the Eraser-only pass (default 3;
	// negative means degrade on the first panic).
	RetryBudget int
	// RetryBackoff is the base of the exponential retry backoff:
	// attempt k sleeps RetryBackoff << (k-1) (default 5ms).
	RetryBackoff time.Duration

	// FactCacheDir, when non-empty, is the digest-keyed fact cache
	// shared by every session for warm compiles.
	FactCacheDir string

	// StateDir, when non-empty, enables the durable job journal: every
	// admitted job is fsync'd to StateDir/wal.log before it can be
	// acknowledged, completions append their result, and Recover
	// (which the caller must run before serving) replays the log after
	// a crash — re-running incomplete jobs and serving completed ones
	// by idempotency key. Empty keeps the daemon purely in-memory.
	StateDir string
	// WalSync selects the WAL durability mode: "always" (default;
	// fsync per record — an acknowledged job survives kill -9 and
	// power loss) or "none" (OS page cache only — survives a daemon
	// crash, not a machine crash).
	WalSync string

	// DetectorFaultSpec, when non-empty, is a shard-level fault
	// injection spec (see internal/faultinject) passed to every
	// session's detector back end — the knob the durability tests use
	// to make a replay deterministically slow or crashy inside the
	// session. Requires the sharded back end (Shards >= 1 after
	// defaults) to have any effect.
	DetectorFaultSpec string

	// MaxTraceBytes bounds an uploaded binary trace in a replay job
	// (default 8 MiB; negative removes the per-trace bound, leaving
	// only the request-body limit). Traces above the bound are
	// rejected as bad requests before any decoding happens.
	MaxTraceBytes int

	// Per-session detector defaults (overridable per job): Shards
	// selects the sharded back end (default 2; a value < 0 forces the
	// serial back end), BatchSize the per-thread event batching, and
	// JournalCap/ShardRetryBudget its supervision, exactly as in
	// racedet.Options.
	Shards           int
	BatchSize        int
	JournalCap       int
	ShardRetryBudget int

	// SampleK/SampleBudget are the per-session adaptive-throttling
	// defaults (overridable per job), exactly as in racedet.Options:
	// SampleK > 0 demotes an access site after K consecutive clean
	// observations; SampleBudget in (0, 1] targets a shipped-events
	// ratio. Both zero (the default) disable throttling.
	SampleK      int
	SampleBudget float64

	// Faults installs deterministic session-level and disk-level fault
	// injection (nil in production). Shard-level faults for the
	// sessions' detector back ends go through DetectorFaultSpec
	// instead, so every session gets its own fresh fault state.
	Faults *faultinject.Plan

	// Log receives one line per lifecycle event (nil = discard).
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 16
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	switch {
	case o.JobTimeout == 0:
		o.JobTimeout = 30 * time.Second
	case o.JobTimeout < 0:
		o.JobTimeout = 0
	}
	switch {
	case o.LivelockWindow == 0:
		o.LivelockWindow = 100000
	case o.LivelockWindow < 0:
		o.LivelockWindow = 0
	}
	switch {
	case o.RetryBudget == 0:
		o.RetryBudget = 3
	case o.RetryBudget < 0:
		o.RetryBudget = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	switch {
	case o.Shards == 0:
		o.Shards = 2
	case o.Shards < 0:
		o.Shards = 0
	}
	if o.JournalCap == 0 {
		o.JournalCap = 4096
	}
	if o.JournalCap < 0 {
		o.JournalCap = 0
	}
	if o.ShardRetryBudget <= 0 {
		o.ShardRetryBudget = 3
	}
	switch {
	case o.MaxTraceBytes == 0:
		o.MaxTraceBytes = 8 << 20
	case o.MaxTraceBytes < 0:
		o.MaxTraceBytes = 0
	}
	if o.SampleK < 0 {
		o.SampleK = 0
	}
	if o.SampleBudget < 0 {
		o.SampleBudget = 0
	}
	if o.WalSync == "" {
		o.WalSync = "always"
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// jobState is a journal entry's lifecycle state. Every admitted job
// moves running → one terminal state; the drain path asserts no job
// is ever left behind in "running" without being counted aborted.
type jobState string

// Job journal states.
const (
	StateRunning    jobState = "running"
	StateCompleted  jobState = "completed"
	StateFailed     jobState = "failed"
	StateDegraded   jobState = "degraded"
	StateAborted    jobState = "aborted-at-drain"
	StateBadRequest jobState = "bad-request"
	// StateDeduped marks a job that repeated an already-known
	// idempotency key and was answered from the stored (or in-flight)
	// original result without running a session.
	StateDeduped jobState = "deduped"
)

// JobRecord is one admitted job's journal entry.
type JobRecord struct {
	Job   uint64
	File  string
	State jobState
	Races int
}

// Server is the daemon core. Create with New, expose with Serve (or
// mount Handler on an existing mux), stop with Drain.
type Server struct {
	opts Options
	m    metrics

	slots   chan struct{} // counting semaphore of session slots
	seq     atomic.Uint64 // admitted-job indices (faultinject's job selector)
	drainCh chan struct{} // closed when draining starts; unblocks queued waiters

	drainOnce sync.Once
	inflight  sync.WaitGroup

	mu      sync.Mutex
	journal map[uint64]*JobRecord
	servers []*http.Server

	// Durable state (nil / empty without Options.StateDir).
	store     *durable.Store
	recovered atomic.Bool // Recover ran (or was a no-op)

	keyMu sync.Mutex
	byKey map[string]*keyEntry
}

// keyEntry memoizes one idempotency key: the first job to claim the
// key runs; duplicates wait on done and are answered from res.
type keyEntry struct {
	job   uint64
	done  chan struct{}
	res   *JobResult
	state jobState
}

// New builds a daemon core with the given options.
func New(opts Options) *Server {
	o := opts.withDefaults()
	return &Server{
		opts:    o,
		slots:   make(chan struct{}, o.MaxSessions),
		drainCh: make(chan struct{}),
		journal: make(map[uint64]*JobRecord),
		byKey:   make(map[string]*keyEntry),
	}
}

func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(s.opts.Log, "racedetd: "+format+"\n", args...)
}

// Handler returns the daemon's HTTP API:
//
//	POST /analyze  submit a compile+analyze job (JSON JobRequest →
//	               JSON JobResult; 503 + Retry-After under load or
//	               while draining)
//	GET  /healthz  200 "ok" while admitting, 503 "draining" after
//	GET  /metrics  the counter set, text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Serve runs the API on l until Drain (or a listener error). It
// always closes l. The returned error is nil after a drain.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.servers = append(s.servers, hs)
	s.mu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Metrics returns a point-in-time snapshot of the daemon's counters,
// including the live WAL store's gauges when durability is on.
func (s *Server) Metrics() Snapshot {
	snap := s.m.snapshot()
	if s.store != nil {
		st := s.store.Stats()
		snap.WalRecords = st.Records
		snap.WalCorruptTailTrunc = st.CorruptTailTruncations
		snap.WalAppendErrors = st.AppendErrors
		snap.WalFsyncMaxNs = st.FsyncMaxNs
	}
	return snap
}

// Jobs returns a copy of the job journal, sorted by job index.
func (s *Server) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.journal))
	for _, r := range s.journal {
		out = append(out, *r)
	}
	sortJobs(out)
	return out
}

func sortJobs(rs []JobRecord) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Job < rs[j-1].Job; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Draining reports whether the daemon has stopped admitting jobs.
func (s *Server) Draining() bool { return s.m.draining.Load() }

// DrainReport is the outcome of a Drain.
type DrainReport struct {
	// Clean is true when every in-flight job reached a terminal state
	// before the deadline.
	Clean bool
	// Aborted lists the jobs still running at the deadline; they are
	// journaled (and counted) as aborted-at-drain, never dropped
	// silently.
	Aborted []JobRecord
}

// Drain performs the graceful-shutdown sequence: stop admitting
// (healthz flips to draining, /analyze returns 503), wait up to
// timeout for in-flight jobs to finish, journal-and-count any job
// still running at the deadline, then close the listeners. Safe to
// call once; later calls return an empty clean report.
func (s *Server) Drain(timeout time.Duration) DrainReport {
	rep := DrainReport{Clean: true}
	s.drainOnce.Do(func() {
		s.m.draining.Store(true)
		close(s.drainCh)
		s.logf("draining: admission stopped, waiting up to %v for in-flight jobs", timeout)

		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		if timeout <= 0 {
			<-done
		} else {
			select {
			case <-done:
			case <-time.After(timeout):
				rep.Clean = false
			}
		}
		if !rep.Clean {
			// Deadline hit: every still-running job is explicitly
			// aborted in the journal and counted, so nothing is dropped
			// silently — the drain is reported unclean instead.
			s.mu.Lock()
			for _, r := range s.journal {
				if r.State == StateRunning {
					r.State = StateAborted
					s.m.jobsAbortedAtDrain.Add(1)
					rep.Aborted = append(rep.Aborted, *r)
				}
			}
			s.mu.Unlock()
			sortJobs(rep.Aborted)
		}

		s.mu.Lock()
		servers := s.servers
		s.mu.Unlock()
		for _, hs := range servers {
			hs.Close()
		}
		if s.store != nil {
			// Close the WAL last: a clean drain has no appends left; an
			// unclean one leaves aborted jobs' admit records incomplete
			// on purpose — the restarted daemon re-runs them.
			if err := s.store.Close(); err != nil {
				s.logf("drain: WAL close: %v", err)
			}
		}
		snap := s.m.snapshot()
		s.logf("drained: clean=%v admitted=%d terminal=%d aborted=%d",
			rep.Clean, snap.JobsAdmitted, snap.Terminal(), len(rep.Aborted))
	})
	return rep
}

// ForceClose abandons any graceful drain and closes the listeners
// immediately (the double-SIGTERM path). In-flight sessions are
// goroutines inside this process; the caller is expected to exit.
func (s *Server) ForceClose() {
	s.m.draining.Store(true)
	s.mu.Lock()
	servers := s.servers
	s.mu.Unlock()
	for _, hs := range servers {
		hs.Close()
	}
}

// ---------------------------------------------------------------------------
// HTTP handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.Metrics().WriteTo(w)
}

// admit implements admission control: an immediate slot if one is
// free, else a bounded wait in the admission queue, else load-shed.
// It returns false when the job must be refused (queue full, injected
// queue-full fault, or drain started while queued).
func (s *Server) admit() bool {
	if f := s.opts.Faults; f != nil && f.AdmissionFull() {
		return false
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	n := s.m.queueWaiting.Add(1)
	if int(n) > s.opts.QueueDepth {
		s.m.queueWaiting.Add(-1)
		return false
	}
	maxInt64(&s.m.queueHighWater, n)
	defer s.m.queueWaiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return true
	case <-s.drainCh:
		return false
	}
}

func (s *Server) release() { <-s.slots }

func (s *Server) journalStart(job uint64, file string) {
	s.mu.Lock()
	s.journal[job] = &JobRecord{Job: job, File: file, State: StateRunning}
	s.mu.Unlock()
}

// journalFinish moves a job to a terminal state. It reports whether
// the transition happened: false means the drain path already counted
// the job aborted, and the caller must not count it a second time —
// the admitted == terminal invariant is exact, not eventually
// consistent.
func (s *Server) journalFinish(job uint64, state jobState, races int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.journal[job]
	if !ok || r.State != StateRunning {
		return false
	}
	r.State = state
	r.Races = races
	return true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.Draining() {
		s.m.jobsRejectedDraining.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.admit() {
		if s.Draining() {
			s.m.jobsRejectedDraining.Add(1)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		s.m.jobsShed.Add(1)
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "all session slots and queue positions busy; retry later",
			http.StatusServiceUnavailable)
		return
	}

	// Admitted: from here on the job has a journal entry and must end
	// in a terminal state no matter what happens below.
	job := s.seq.Add(1)
	s.m.jobsAdmitted.Add(1)
	s.inflight.Add(1)
	active := s.m.sessionsActive.Add(1)
	maxInt64(&s.m.sessionsPeak, active)
	s.journalStart(job, "")
	defer func() {
		s.m.sessionsActive.Add(-1)
		s.release()
		s.inflight.Done()
	}()

	if f := s.opts.Faults; f != nil {
		if d := f.SlowClient(job); d > 0 {
			// A slow client stalls its own admitted session — bounded by
			// the session slot it occupies, not by daemon memory.
			s.m.slowClientStalls.Add(1)
			time.Sleep(d)
		}
	}

	var req JobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes)).Decode(&req); err != nil {
		if s.journalFinish(job, StateBadRequest, 0) {
			s.m.jobsFailed.Add(1)
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := detectorFor(req.Detector); err != nil {
		if s.journalFinish(job, StateBadRequest, 0) {
			s.m.jobsFailed.Add(1)
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.validateTrace(req); err != nil {
		if s.journalFinish(job, StateBadRequest, 0) {
			s.m.jobsFailed.Add(1)
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := validateSampling(req); err != nil {
		if s.journalFinish(job, StateBadRequest, 0) {
			s.m.jobsFailed.Add(1)
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if rec, ok := s.journal[job]; ok {
		rec.File = req.File
	}
	s.mu.Unlock()

	// Idempotency: a repeated key never runs a second session — it is
	// answered from the original job's result, waiting for it if the
	// original is still in flight.
	var ent *keyEntry
	if req.IdempotencyKey != "" {
		e, isNew := s.claimKey(req.IdempotencyKey, job)
		if !isNew {
			s.serveDuplicate(w, r, job, req, e)
			return
		}
		ent = e
	}

	// Durable admit: with a state dir, the job must be fsync'd to the
	// WAL before any acknowledgment can reach the client. A WAL that
	// cannot append (disk full, failed fsync) load-sheds — at-least-once
	// means the client retries a job the daemon could not make durable.
	admitted := false
	if s.store != nil {
		if err := s.appendAdmit(job, req); err != nil {
			s.dropKey(req.IdempotencyKey, ent)
			if s.journalFinish(job, StateFailed, 0) {
				s.m.jobsFailed.Add(1)
			}
			s.logf("job %d: WAL admit refused: %v", job, err)
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, "durability unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		admitted = true
	}

	if len(req.Trace) > 0 {
		s.m.traceJobs.Add(1)
	}

	// Injected client disconnect: the client is gone, but the admitted
	// session still runs to completion and is journaled — an abandoned
	// connection must never corrupt or lose an analysis.
	injectedDrop := false
	if f := s.opts.Faults; f != nil && f.ClientDisconnect(job) {
		injectedDrop = true
	}

	res := s.runSession(job, req)
	res.Job = job

	state := terminalState(res)
	if s.journalFinish(job, state, len(res.Races)+len(res.BaselineReports)) {
		switch state {
		case StateDegraded:
			s.m.jobsDegraded.Add(1)
		case StateFailed:
			s.m.jobsFailed.Add(1)
		default:
			s.m.jobsCompleted.Add(1)
		}
		// The result record is appended only for jobs the drain did not
		// already count aborted: an aborted job must stay incomplete in
		// the WAL so the restarted daemon re-runs it.
		if admitted {
			if err := s.appendResult(job, req.IdempotencyKey, state, res); err != nil {
				// The verdict still reaches the client; losing the result
				// record only means an idempotent re-run at the next boot.
				s.logf("job %d: WAL result append failed (job re-runs at restart): %v", job, err)
			}
		}
	}
	// Publish the key result even when the drain counted the job
	// aborted: duplicates waiting on the key must never hang.
	if ent != nil {
		s.resolveKey(ent, res, state)
	}
	s.logf("job %d: file=%q state=%s races=%d retries=%d",
		job, req.File, state, len(res.Races), res.Retries)

	if injectedDrop || r.Context().Err() != nil {
		// Client vanished mid-request (injected or real): the work is
		// already journaled and counted; just tear the connection down.
		s.m.clientDisconnects.Add(1)
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// maxRequestBytes bounds an /analyze request body (16 MiB is orders of
// magnitude above any MJ program; the bound exists so a misbehaving
// client cannot OOM the daemon through one request).
const maxRequestBytes = 16 << 20

// validateTrace vets a replay job at admission: a trace is mutually
// exclusive with Source, bounded by MaxTraceBytes, and must carry a
// well-formed header, trailer, and table section before it is allowed
// to occupy a session slot. Segment payloads are NOT decoded here —
// mid-stream corruption surfaces inside the session as a structured
// runtime failure, exactly like any other failed analysis.
func (s *Server) validateTrace(req JobRequest) error {
	if len(req.Trace) == 0 {
		return nil
	}
	if req.Source != "" {
		return fmt.Errorf("source and trace are mutually exclusive")
	}
	if max := s.opts.MaxTraceBytes; max > 0 && len(req.Trace) > max {
		return fmt.Errorf("trace is %d bytes, above the daemon's %d-byte limit", len(req.Trace), max)
	}
	if _, err := trace.NewReader(req.Trace); err != nil {
		return err
	}
	return nil
}

// validateSampling vets a job's throttling overrides at admission: a
// budget outside [0, 1] can never be satisfied and is refused before
// the job occupies a session slot. SampleK's sign is meaningful and
// never rejected (> 0 overrides the daemon default, < 0 forces
// throttling off, mirroring the Shards convention).
func validateSampling(req JobRequest) error {
	if req.SampleBudget < 0 || req.SampleBudget > 1 {
		return fmt.Errorf("sample_budget must be in [0, 1] (got %g)", req.SampleBudget)
	}
	switch req.Priors {
	case "", "off":
	case "on", "invert":
		if req.SampleK < 0 {
			return fmt.Errorf("priors %q seed the sampler, but sample_k < 0 forces throttling off", req.Priors)
		}
		if len(req.Trace) > 0 {
			return fmt.Errorf("priors need a compiled program to take tiers from; trace jobs cannot use them")
		}
		if req.NoStatic {
			return fmt.Errorf("priors come from the static lock-discipline tiers; drop nostatic")
		}
	default:
		return fmt.Errorf(`priors must be "on", "off", or "invert" (got %q)`, req.Priors)
	}
	return nil
}

// detectorFor maps the wire detector name to racedet's enum.
func detectorFor(name string) (racedet.Detector, error) {
	switch name {
	case "", "trie":
		return racedet.Trie, nil
	case "eraser":
		return racedet.Eraser, nil
	case "objectrace":
		return racedet.ObjectRace, nil
	case "hb", "vclock":
		return racedet.HappensBefore, nil
	}
	return 0, fmt.Errorf("unknown detector %q", name)
}
