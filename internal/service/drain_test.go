package service

import (
	"sync"
	"testing"
	"time"
)

// startJobs submits n jobs concurrently and returns a wait function
// that collects their client-side errors.
func startJobs(c *Client, n int, src string) func() []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Analyze(JobRequest{File: "drain.mj", Source: src})
		}()
	}
	return func() []error { wg.Wait(); return errs }
}

// waitActive polls until n sessions hold slots (i.e. are admitted and
// running), failing the test on timeout.
func waitActive(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SessionsActive < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d sessions active, want %d", s.Metrics().SessionsActive, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDrainWaitsForInflightJobs(t *testing.T) {
	// Three in-flight jobs, each stalled 300ms by the injected slow
	// client; drain must wait for all of them and report clean with
	// zero silent drops: admitted == terminal, all completed.
	s, c, stop := newTestServer(t, Options{
		MaxSessions: 3,
		Faults:      mustPlan(t, "slow-client:job=*,delay=300ms"),
	})
	defer stop()

	wait := startJobs(c, 3, cleanProg)
	waitActive(t, s, 3)

	rep := s.Drain(10 * time.Second)
	if !rep.Clean {
		t.Fatalf("drain not clean: %+v", rep)
	}
	if len(rep.Aborted) != 0 {
		t.Errorf("clean drain lists aborted jobs: %+v", rep.Aborted)
	}
	for i, err := range wait() {
		if err != nil {
			t.Errorf("in-flight job %d lost at drain: %v", i+1, err)
		}
	}

	m := s.Metrics()
	if !m.Draining {
		t.Error("draining gauge not set")
	}
	if m.JobsAdmitted != 3 || m.JobsCompleted != 3 {
		t.Errorf("admitted=%d completed=%d, want 3/3", m.JobsAdmitted, m.JobsCompleted)
	}
	if m.Terminal() != m.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d: a job was dropped silently", m.Terminal(), m.JobsAdmitted)
	}
	for _, j := range s.Jobs() {
		if j.State != StateCompleted {
			t.Errorf("journal %+v, want completed", j)
		}
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s, c, stop := newTestServer(t, Options{})
	defer stop()

	if rep := s.Drain(time.Second); !rep.Clean {
		t.Fatalf("idle drain not clean: %+v", rep)
	}
	if err := c.Health(); err == nil {
		t.Error("healthz should report draining")
	}
	// httptest's listener is still up (Drain only closes servers
	// registered via Serve), so the handler's draining rejection is
	// observable directly.
	if _, err := c.Analyze(JobRequest{File: "late.mj", Source: cleanProg}); err == nil {
		t.Error("post-drain job should be rejected")
	} else if u, ok := err.(*Unavailable); !ok || u.Reason != "draining" {
		t.Errorf("rejection = %v, want draining Unavailable", err)
	}
	if m := s.Metrics(); m.JobsRejectedDraining != 1 {
		t.Errorf("jobs_rejected_draining = %d, want 1", m.JobsRejectedDraining)
	}
}

func TestDrainDeadlineCountsAbortedJobs(t *testing.T) {
	// Two jobs stalled for 2s against a 100ms drain deadline: the drain
	// is unclean and both jobs are journaled + counted aborted — never
	// silently dropped.
	s, c, stop := newTestServer(t, Options{
		MaxSessions: 2,
		Faults:      mustPlan(t, "slow-client:job=*,delay=2s"),
	})
	defer stop()

	wait := startJobs(c, 2, cleanProg)
	waitActive(t, s, 2)

	rep := s.Drain(100 * time.Millisecond)
	if rep.Clean {
		t.Fatal("drain should miss its deadline")
	}
	if len(rep.Aborted) != 2 {
		t.Fatalf("aborted = %+v, want both jobs", rep.Aborted)
	}
	m := s.Metrics()
	if m.JobsAbortedAtDrain != 2 {
		t.Errorf("jobs_aborted_at_drain = %d, want 2", m.JobsAbortedAtDrain)
	}
	if m.Terminal() != m.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d after unclean drain", m.Terminal(), m.JobsAdmitted)
	}
	for _, j := range s.Jobs() {
		if j.State != StateAborted {
			t.Errorf("journal %+v, want aborted-at-drain", j)
		}
	}

	// The stalled sessions eventually finish; aborted jobs must NOT be
	// double-counted as completed (the terminal invariant is exact).
	wait()
	m = s.Metrics()
	if m.JobsCompleted != 0 {
		t.Errorf("jobs_completed = %d after abort, want 0 (no double counting)", m.JobsCompleted)
	}
	if m.Terminal() != m.JobsAdmitted {
		t.Errorf("terminal=%d admitted=%d after late finishers", m.Terminal(), m.JobsAdmitted)
	}
}

func TestDrainUnblocksQueuedJobs(t *testing.T) {
	// A job waiting in the admission queue when drain starts must be
	// released with a draining rejection, not left hanging forever.
	s, c, stop := newTestServer(t, Options{
		MaxSessions: 1,
		QueueDepth:  4,
		Faults:      mustPlan(t, "slow-client:job=1,delay=500ms"),
	})
	defer stop()

	first := startJobs(c, 1, cleanProg)
	waitActive(t, s, 1)

	queuedErr := make(chan error, 1)
	go func() {
		_, err := c.Analyze(JobRequest{File: "queued.mj", Source: cleanProg})
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueWaiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rep := s.Drain(10 * time.Second)
	if !rep.Clean {
		t.Fatalf("drain not clean: %+v", rep)
	}
	select {
	case err := <-queuedErr:
		if _, ok := err.(*Unavailable); !ok {
			t.Errorf("queued job error = %v, want *Unavailable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job still hanging after drain")
	}
	for _, err := range first() {
		if err != nil {
			t.Errorf("in-flight job: %v", err)
		}
	}
	m := s.Metrics()
	if m.JobsAdmitted != 1 || m.JobsCompleted != 1 {
		t.Errorf("admitted=%d completed=%d, want 1/1", m.JobsAdmitted, m.JobsCompleted)
	}
}

func TestDrainIdempotent(t *testing.T) {
	s, _, stop := newTestServer(t, Options{})
	defer stop()
	if rep := s.Drain(time.Second); !rep.Clean {
		t.Fatalf("first drain: %+v", rep)
	}
	// Second drain is a no-op and must not hang or double-count.
	if rep := s.Drain(time.Second); !rep.Clean || len(rep.Aborted) != 0 {
		t.Fatalf("second drain: %+v", rep)
	}
}
