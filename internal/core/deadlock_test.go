package core

import (
	"strings"
	"testing"
)

const abbaSrc = `
class Lock { int pad; }
class W extends Thread {
    Lock p; Lock q;
    int n;
    W(Lock p0, Lock q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 3; i++) {
            synchronized (p) {
                synchronized (q) {
                    n = n + 1;
                }
            }
        }
    }
}
class Main {
    static void main() {
        Lock a = new Lock();
        Lock b = new Lock();
        W w1 = new W(a, b);
        W w2 = new W(b, a); // opposite order: AB-BA
        w1.start();
        w1.join();          // serialized here so the run cannot hang,
        w2.start();         // but the lock-order inversion remains
        w2.join();
        print(w1.n + w2.n);
    }
}
`

// TestDeadlockAnalysis verifies the §10 extension: a lock-order
// inversion is reported as a potential deadlock even when the observed
// run (serialized by joins) never hangs.
func TestDeadlockAnalysis(t *testing.T) {
	cfg := Full()
	cfg.DetectDeadlocks = true
	res, err := RunSource("abba.mj", abbaSrc, cfg)
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	if len(res.DeadlockReports) != 1 {
		t.Fatalf("deadlock reports = %v, want 1", res.DeadlockReports)
	}
	if !strings.Contains(res.DeadlockReports[0], "POTENTIAL DEADLOCK") {
		t.Errorf("report = %q", res.DeadlockReports[0])
	}
	// Consistent ordering stays quiet.
	quiet := strings.Replace(abbaSrc, "new W(b, a); // opposite order: AB-BA", "new W(a, b);", 1)
	res2, err := RunSource("ab.mj", quiet, cfg)
	if err != nil || res2.Err != nil {
		t.Fatalf("%v/%v", err, res2.Err)
	}
	if len(res2.DeadlockReports) != 0 {
		t.Errorf("consistent order reported: %v", res2.DeadlockReports)
	}
}
