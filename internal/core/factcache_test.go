package core

import (
	"strings"
	"testing"
)

// A program with a real race (unsynchronized counter) plus enough
// structure for the interprocedural machinery to matter.
const cacheSrc = `
class Counter {
    int n;
    void bump(int d) { n = n + d; }
}
class Worker extends Thread {
    Counter c;
    Worker(Counter c0) { c = c0; }
    void run() {
        for (int i = 0; i < 20; i++) { c.bump(1); }
    }
}
class Main {
    static void main() {
        Counter c = new Counter();
        Worker a = new Worker(c);
        Worker b = new Worker(c);
        a.start(); b.start();
        a.join(); b.join();
        print(c.n);
    }
}`

// renderRun flattens the parts of a run that must be reproducible.
func renderRun(t *testing.T, p *Pipeline) string {
	t.Helper()
	rr, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var b strings.Builder
	for i, r := range rr.Reports {
		b.WriteString(r.String())
		b.WriteByte('\n')
		for _, h := range rr.StaticHints[i] {
			b.WriteString("  hint: " + h + "\n")
		}
	}
	b.WriteString(rr.Output)
	return b.String()
}

func renderFuncs(p *Pipeline) string {
	var b strings.Builder
	for _, fn := range p.Prog.Funcs {
		b.WriteString(fn.String())
	}
	return b.String()
}

// A second compile of identical source replays everything from the
// cache, and the warm run is byte-identical to the cold one.
func TestFactCacheProgramHit(t *testing.T) {
	cfg := Full()
	cfg.FactCacheDir = t.TempDir()

	cold, err := Compile("t.mj", cacheSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats.ProgramHit {
		t.Fatal("first compile cannot hit")
	}
	warm, err := Compile("t.mj", cacheSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheStats.ProgramHit {
		t.Fatal("second compile must be a program-level hit")
	}
	if got, want := renderFuncs(warm), renderFuncs(cold); got != want {
		t.Errorf("instrumented IR differs between cold and warm compiles")
	}
	if warm.InstrStats != cold.InstrStats {
		t.Errorf("InstrStats differ: warm %+v cold %+v", warm.InstrStats, cold.InstrStats)
	}
	ws, cs := warm.StaticStats, cold.StaticStats
	ws.AnalysisNs, cs.AnalysisNs = 0, 0 // wall time is not reproducible
	if ws != cs {
		t.Errorf("StaticStats differ: warm %+v cold %+v", ws, cs)
	}
	if got, want := renderRun(t, warm), renderRun(t, cold); got != want {
		t.Errorf("warm run differs from cold run:\n%s\nvs\n%s", got, want)
	}
}

// Changing one function (same source positions, different constant)
// reuses clean functions on the partial path. Without interprocedural
// facts the dirty set is exactly the changed function.
func TestFactCachePartialReuse(t *testing.T) {
	cfg := Full().NoInterproc()
	cfg.FactCacheDir = t.TempDir()

	if _, err := Compile("t.mj", cacheSrc, cfg); err != nil {
		t.Fatal(err)
	}
	// Same shape, same positions: only the loop bound changes.
	src2 := strings.Replace(cacheSrc, "i < 20", "i < 21", 1)
	warm, err := Compile("t.mj", src2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.ProgramHit {
		t.Fatal("modified program cannot be a program-level hit")
	}
	if warm.CacheStats.FnHits == 0 {
		t.Errorf("no function-level hits: %+v", warm.CacheStats)
	}
	if warm.CacheStats.FnMisses == 0 {
		t.Errorf("the changed function must miss: %+v", warm.CacheStats)
	}

	// The partial compile must match a cold compile of the new source.
	cold, err := Compile("t.mj", src2, Full().NoInterproc())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderFuncs(warm), renderFuncs(cold); got != want {
		t.Errorf("partial-reuse IR differs from cold compile")
	}
	if warm.InstrStats != cold.InstrStats {
		t.Errorf("InstrStats differ: warm %+v cold %+v", warm.InstrStats, cold.InstrStats)
	}
	if got, want := renderRun(t, warm), renderRun(t, cold); got != want {
		t.Errorf("partial-reuse run differs from cold run:\n%s\nvs\n%s", got, want)
	}
}

// With interprocedural facts on, a change dirties its whole call-graph
// component; functions outside the component still replay.
func TestFactCachePartialReuseInterproc(t *testing.T) {
	// Island.poke is never called: it forms its own component.
	src := cacheSrc + `
class Island {
    int x;
    void poke() { x = x + 1; int y = x; }
}`
	cfg := Full()
	cfg.FactCacheDir = t.TempDir()

	if _, err := Compile("t.mj", src, cfg); err != nil {
		t.Fatal(err)
	}
	src2 := strings.Replace(src, "i < 20", "i < 21", 1)
	warm, err := Compile("t.mj", src2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.ProgramHit {
		t.Fatal("modified program cannot be a program-level hit")
	}
	if warm.CacheStats.FnHits == 0 {
		t.Errorf("isolated component must replay: %+v", warm.CacheStats)
	}
	cold, err := Compile("t.mj", src2, Full())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderFuncs(warm), renderFuncs(cold); got != want {
		t.Errorf("partial-reuse IR differs from cold compile")
	}
	if got, want := renderRun(t, warm), renderRun(t, cold); got != want {
		t.Errorf("partial-reuse run differs from cold run:\n%s\nvs\n%s", got, want)
	}
}

// Cache entries from one configuration are invisible to another, and a
// cold compile with an unwritable directory still works.
func TestFactCacheConfigIsolation(t *testing.T) {
	dir := t.TempDir()
	cfg := Full()
	cfg.FactCacheDir = dir
	if _, err := Compile("t.mj", cacheSrc, cfg); err != nil {
		t.Fatal(err)
	}
	other := Full().NoPeeling()
	other.FactCacheDir = dir
	p, err := Compile("t.mj", cacheSrc, other)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheStats.ProgramHit {
		t.Error("entry leaked across configurations")
	}
}
