package core

import (
	"strings"
	"testing"
)

const racySrc = `
class Data { int f; int g; }

class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() {
        d.f = d.f + 1;
    }
}

class Main {
    static Data x;
    static void main() {
        x = new Data();
        x.f = 100;
        Worker t1 = new Worker(x);
        Worker t2 = new Worker(x);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        print(x.f);
    }
}
`

const syncSrc = `
class Counter { int n; }

class Worker extends Thread {
    Counter c;
    Worker(Counter c0) { c = c0; }
    void run() {
        int i = 0;
        while (i < 50) {
            synchronized (c) {
                c.n = c.n + 1;
            }
            i = i + 1;
        }
    }
}

class Main {
    static void main() {
        Counter c = new Counter();
        Worker t1 = new Worker(c);
        Worker t2 = new Worker(c);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        print(c.n);
    }
}
`

func TestSmokeRacyProgram(t *testing.T) {
	res, err := RunSource("racy.mj", racySrc, Full())
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("runtime error: %v", res.Err)
	}
	if len(res.Reports) == 0 {
		t.Fatalf("expected a race report on Data.f, got none\ninterp: %+v\ndetector: %+v\ninstr: %+v",
			res.Interp, res.DetectorStats, res.InstrStats)
	}
	found := false
	for _, r := range res.Reports {
		if r.Access.FieldName == "Data.f" {
			found = true
		}
	}
	if !found {
		t.Errorf("no report names Data.f: %v", res.Reports)
	}
	if !strings.Contains(res.Output, "10") {
		t.Errorf("program output missing counter value: %q", res.Output)
	}
}

func TestSmokeSynchronizedProgramIsQuiet(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42} {
		res, err := RunSource("sync.mj", syncSrc, Full().WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Err != nil {
			t.Fatalf("seed %d: runtime error: %v", seed, res.Err)
		}
		if len(res.Reports) != 0 {
			t.Errorf("seed %d: expected no races, got %v", seed, res.Reports)
		}
		if strings.TrimSpace(res.Output) != "100" {
			t.Errorf("seed %d: want output 100, got %q", seed, res.Output)
		}
	}
}

func TestSmokeConfigsAgreeOnRaces(t *testing.T) {
	configs := map[string]Config{
		"Full":         Full(),
		"NoStatic":     Full().NoStatic(),
		"NoDominators": Full().NoDominators(),
		"NoPeeling":    Full().NoPeeling(),
		"NoCache":      Full().NoCache(),
	}
	for name, cfg := range configs {
		res, err := RunSource("racy.mj", racySrc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: runtime error: %v", name, res.Err)
		}
		if len(res.RacyObjects) != 1 {
			t.Errorf("%s: want 1 racy object, got %d (%v)", name, len(res.RacyObjects), res.Reports)
		}
	}
}
