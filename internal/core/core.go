// Package core orchestrates the full pipeline of Figure 1: static
// datarace analysis → optimized instrumentation → execution with the
// runtime optimizer and runtime detector. Every configuration knob of
// the paper's evaluation (Table 2's Base/Full/NoStatic/NoDominators/
// NoPeeling/NoCache and Table 3's Full/FieldsMerged/NoOwnership) is a
// field of Config, and the baseline detectors plug in through the same
// event stream.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"racedet/internal/escape"
	"racedet/internal/faultinject"
	"racedet/internal/icfg"
	"racedet/internal/instrument"
	"racedet/internal/interp"
	"racedet/internal/ir"
	"racedet/internal/lang/ast"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
	"racedet/internal/racestatic"
	"racedet/internal/rt/deadlock"
	"racedet/internal/rt/detector"
	"racedet/internal/rt/eraser"
	"racedet/internal/rt/event"
	"racedet/internal/rt/immutable"
	"racedet/internal/rt/objectrace"
	"racedet/internal/rt/postmortem"
	"racedet/internal/rt/sitestate"
	"racedet/internal/rt/trace"
	"racedet/internal/rt/vclock"
	"racedet/internal/static/factcache"
	"racedet/internal/static/lockdiscipline"
)

// DetectorKind selects the runtime detector.
type DetectorKind int

// Detector kinds.
const (
	DetTrie       DetectorKind = iota // the paper's detector
	DetEraser                         // Eraser lockset baseline
	DetObjectRace                     // Praun-Gross object-granularity baseline
	DetVClock                         // vector-clock happens-before baseline
	DetNone                           // no detector (Base measurements)
)

func (k DetectorKind) String() string {
	switch k {
	case DetTrie:
		return "trie"
	case DetEraser:
		return "eraser"
	case DetObjectRace:
		return "objectrace"
	case DetVClock:
		return "vclock"
	case DetNone:
		return "none"
	}
	return "?"
}

// Config selects pipeline phases and detector options. Use Full() or
// Base() and the With* helpers rather than constructing it literally.
type Config struct {
	// Instrument inserts trace pseudo-instructions (false = the
	// paper's "Base": uninstrumented execution).
	Instrument bool
	// Static runs the §5 static datarace analysis and instruments only
	// the static datarace set (false = "NoStatic": trace everything).
	Static bool
	// Dominators enables the §6.1 static weaker-than elimination
	// (false = "NoDominators"; implies no peeling, as in the paper).
	Dominators bool
	// Peeling enables §6.3 loop peeling (false = "NoPeeling").
	Peeling bool
	// Cache enables the §4 runtime optimizer (false = "NoCache").
	Cache bool
	// Interproc enables the interprocedural strengthenings of the
	// static phase: the flow-sensitive must-held-lockset dataflow
	// backing MustCommonSync, and the cross-call weaker-than
	// elimination (relaxed barriers, stable fields, MustTrace
	// summaries). False = "NoInterproc": exactly the per-function
	// analysis, for the ablation column.
	Interproc bool
	// PtsWorkers > 0 runs the Andersen points-to solver on that many
	// parallel workers (same fixed point, see pointsto.AnalyzeParallel);
	// 0 keeps the serial solver.
	PtsWorkers int
	// FactCacheDir, when non-empty, persists per-function static
	// analysis results keyed by content digests under this directory
	// and reuses them for unchanged functions on later compiles.
	FactCacheDir string
	// Ownership enables the §7 ownership filter (false =
	// "NoOwnership").
	Ownership bool
	// FieldsMerged collapses instance fields per object (Table 3).
	FieldsMerged bool
	// PseudoLocks models join via dummy locks (§2.3); disabling shows
	// the single-common-lock false positive of §8.3.
	PseudoLocks bool
	// ReportAll reports every racing access, not one per location.
	ReportAll bool
	// Detector selects the runtime algorithm.
	Detector DetectorKind

	// Seed/Quantum/MaxSteps configure the deterministic scheduler.
	Seed     int64
	Quantum  int
	MaxSteps uint64

	// RecordSchedule captures the scheduler's decision sequence in
	// RunResult.Schedule, turning any run — in particular one exposing
	// a schedule-dependent race — into a replayable artifact.
	RecordSchedule bool
	// ReplaySchedule re-executes a recorded decision sequence instead
	// of scheduling live; Seed is ignored and Quantum is taken from the
	// trace. Replay of a trace on the program that produced it is
	// deterministic down to every detector event.
	ReplaySchedule *interp.ScheduleTrace

	// Timeout bounds the execution's wall-clock time (0 = none); on
	// expiry the run fails with a watchdog RuntimeError carrying a
	// thread dump.
	Timeout time.Duration
	// LivelockWindow terminates runs making no heap progress for this
	// many consecutive scheduler slices (0 = disabled). It catches
	// spinning programs in O(window·quantum) steps instead of burning
	// the whole step budget.
	LivelockWindow int

	// MaxTrieNodes/MaxCacheThreads/MaxOwnerLocations bound detector
	// memory (0 = unbounded). Degradation is graceful and strictly
	// over-reporting; see detector.Options.
	MaxTrieNodes      int
	MaxCacheThreads   int
	MaxOwnerLocations int

	// Out receives the program's print output; nil discards.
	Out io.Writer

	// RecordTo, when non-nil, also streams the runtime event log to
	// this writer for post-mortem analysis (§1/§2.6): replay it with
	// ReplayLog or reconstruct FullRace with postmortem.FullRace.
	RecordTo io.Writer

	// TraceTo, when non-nil, additionally records the run as a compact
	// binary event trace (internal/rt/trace): delta-encoded, interned,
	// segment-indexed, replayable into any detector configuration with
	// ReplayTrace — record once, analyze many. The writer is finalized
	// when the run ends, even on a runtime error, so a failed run still
	// leaves a valid partial trace.
	TraceTo io.Writer

	// DetectDeadlocks additionally runs the lock-order-graph
	// potential-deadlock analysis (the paper's §10 future work).
	DetectDeadlocks bool

	// AnalyzeImmutability additionally runs the dynamic immutability
	// analysis (the other §10 future-work item): per shared field,
	// whether it was only written before cross-thread publication.
	AnalyzeImmutability bool

	// PackedTrie selects the §8.2 multi-location trie representation
	// (one trie per object instead of per location).
	PackedTrie bool

	// Shards, when >= 1, runs the trie detector as a location-sharded
	// parallel back end with that many workers (1 pins the sharded
	// machinery without parallelism; 0 keeps the serial back end).
	// Race reports are merged deterministically and are byte-identical
	// to the serial back end (for unbounded detector memory; see
	// detector.Sharded). Only DetTrie honors it.
	Shards int
	// BatchSize, when > 0, batches access events per thread: the
	// interpreter buffers up to this many accesses before calling into
	// the sink chain. Event order — and therefore detection — is
	// unchanged; see interp.Options.BatchSize.
	BatchSize int

	// JournalCap enables fault tolerance in the sharded back end: each
	// shard journals routed messages and checkpoints its state, so a
	// panicked worker restarts and replays instead of failing the run
	// (0 = off). Meaningful only with Shards >= 1.
	JournalCap int
	// RetryBudget is the number of per-shard restart attempts before a
	// supervised shard degrades to the Eraser lockset path (0 degrades
	// on the first panic).
	RetryBudget int
	// ShardQueueDepth bounds each router→worker queue in messages
	// (0 = detector.DefaultQueueDepth).
	ShardQueueDepth int
	// DropOnBackpressure drops access batches with accounting instead
	// of blocking when a shard queue is full (trades exactness for
	// router latency; see detector.Options.DropOnBackpressure).
	DropOnBackpressure bool
	// Faults installs fault-injection hooks on the sharded back end
	// (tests); FaultSpec is the textual alternative (CLI -inject),
	// parsed by internal/faultinject. Faults wins when both are set.
	Faults    detector.FaultInjector
	FaultSpec string

	// SampleK > 0 enables adaptive per-site throttling (-sample-k): a
	// static access site demotes to a counting-only stub after K
	// consecutive clean observations and re-arms on ownership
	// contact; stub suppression is per-location and write-aware, so
	// stable (recurring) races still ship. Applies to live runs and
	// trace replays alike — sampling lives in the detector's filter,
	// never in the recorder. Requires the ownership filter.
	SampleK int
	// SampleBudget > 0 enables the target-overhead controller
	// (-sample-budget): K adapts each window to hold the events-shipped
	// ratio at the budget (0 < budget <= 1).
	SampleBudget float64

	// Priors seeds the sampler with per-site static lock-discipline
	// priors (-priors): "on" pins statically unguarded and
	// guarded-inconsistent sites armed and demotes guarded-consistent
	// sites early; "invert" swaps the two (the ablation mode); "" or
	// "off" ignores the tiers. Requires sampling and a compiled
	// pipeline with static analysis.
	Priors string
	// SitePriors supplies the per-site prior map explicitly. Leave it
	// nil for live runs — RunConfig fills it from the compiled
	// pipeline's discipline tiers; trace replays (ReplayTrace) have no
	// pipeline, so callers wanting priors there must set it, typically
	// from Pipeline.SitePriors of the program that produced the trace.
	SitePriors map[sitestate.Key]sitestate.Prior
}

// PriorsEnabled reports whether mode requests prior-seeded sampling
// ("on" or "invert"; "" and "off" do not).
func PriorsEnabled(mode string) bool { return mode == "on" || mode == "invert" }

// Full returns the paper's complete configuration.
func Full() Config {
	return Config{
		Instrument:  true,
		Static:      true,
		Dominators:  true,
		Peeling:     true,
		Cache:       true,
		Ownership:   true,
		PseudoLocks: true,
		Interproc:   true,
		Detector:    DetTrie,
	}
}

// Base returns the uninstrumented configuration (Table 2 "Base").
func Base() Config {
	c := Full()
	c.Instrument = false
	c.Detector = DetNone
	return c
}

// NoStatic disables static race analysis (Table 2 "NoStatic").
func (c Config) NoStatic() Config { c.Static = false; return c }

// NoDominators disables the static weaker-than elimination and loop
// peeling (Table 2 "NoDominators"; peeling is useless without it).
func (c Config) NoDominators() Config { c.Dominators = false; c.Peeling = false; return c }

// NoPeeling disables loop peeling only (Table 2 "NoPeeling").
func (c Config) NoPeeling() Config { c.Peeling = false; return c }

// NoCache disables the runtime optimizer (Table 2 "NoCache").
func (c Config) NoCache() Config { c.Cache = false; return c }

// NoInterproc disables the interprocedural static strengthenings
// (ablation column "NoInterproc": per-function analysis only).
func (c Config) NoInterproc() Config { c.Interproc = false; return c }

// NoOwnership disables the ownership filter (Table 3 "NoOwnership").
func (c Config) NoOwnership() Config { c.Ownership = false; return c }

// MergedFields enables object-granularity fields (Table 3
// "FieldsMerged").
func (c Config) MergedFields() Config { c.FieldsMerged = true; return c }

// WithDetector selects a runtime detector baseline.
func (c Config) WithDetector(k DetectorKind) Config { c.Detector = k; return c }

// WithSeed sets the scheduler seed (0 = fixed round-robin quantum).
func (c Config) WithSeed(seed int64) Config { c.Seed = seed; return c }

// StaticStats summarizes the static analysis phase.
type StaticStats struct {
	AccessSites       int
	RaceSetSize       int
	PairCount         int
	ThreadLocalPruned int
	SameThreadPruned  int
	CommonSyncPruned  int
	// FlowSyncPruned is the subset of CommonSyncPruned proven only by
	// the flow-sensitive must-held-lockset dataflow (0 without
	// Config.Interproc).
	FlowSyncPruned int
	// ElimIntra/ElimPeel/ElimInterproc split InstrStats.Eliminated by
	// what justified each kill (see instrument.ElimKind).
	ElimIntra     int
	ElimPeel      int
	ElimInterproc int
	// Tier* summarize the lock-discipline classification of the
	// surviving pairs and kept sites (see internal/static/lockdiscipline).
	TierUnguardedPairs    int
	TierInconsistentPairs int
	TierDemotedPairs      int
	TierUnguardedSites    int
	TierInconsistentSites int
	TierConsistentSites   int
	// AnalysisNs is the wall time of the static phase: points-to, call
	// graph, escape, race analysis, and trace insertion/elimination.
	AnalysisNs int64
}

// Pipeline is a compiled program plus everything the runtime needs.
type Pipeline struct {
	Config Config
	File   string

	AST    *ast.Program
	Sem    *sem.Program
	Lower  *lower.Result
	Prog   *ir.Program
	Static *racestatic.Result // nil when Config.Static is false
	Pts    *pointsto.Result
	ICG    *icfg.Graph
	Esc    *escape.Result

	// Discipline is the lock-discipline tier classification over the
	// static result (nil when Config.Static is false or on a fact-cache
	// program hit, which replays the rendered report and tier entries
	// instead of the live structure).
	Discipline *lockdiscipline.Result
	// disciplineReport is the rendered ranked pair report; tierEntries
	// is the portable per-site tier list — both survive program-level
	// cache hits verbatim, which is what keeps -static-report
	// byte-identical on warm compiles.
	disciplineReport string
	tierEntries      []factcache.TierEntry

	// ElimReport details every weaker-than elimination (nil unless
	// Config.Instrument && Config.Dominators).
	ElimReport *instrument.Report
	// CacheStats reports fact-cache hits/misses (zero value when
	// Config.FactCacheDir is empty).
	CacheStats factcache.Stats

	InstrStats  instrument.Stats
	StaticStats StaticStats

	// priorsOnce/sitePriors memoize the tier-derived sampling priors
	// (shared read-only by every run of this pipeline).
	priorsOnce sync.Once
	sitePriors map[sitestate.Key]sitestate.Prior

	// hintOnce/hintIndex memoize the static may-race partner index used
	// by staticHints: the pairs are fixed at compile time, but the index
	// used to be rebuilt on every run — a measurable share of per-run
	// allocations for fuzzing workloads that run one compiled program
	// thousands of times. sync.Once keeps RunConfig safe to call from
	// concurrent workers.
	hintOnce  sync.Once
	hintIndex map[string][]string
}

// Compile runs phases 1–2 of Figure 1 (static analysis and optimized
// instrumentation) on MJ source text.
func Compile(file, src string, cfg Config) (*Pipeline, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}

	p := &Pipeline{Config: cfg, File: file, AST: prog, Sem: sp}

	// Loop peeling rewrites the AST; re-check to annotate new nodes.
	if cfg.Instrument && cfg.Peeling && cfg.Dominators {
		isField := func(id *ast.Ident) bool {
			return sp.IdentRef[id].Kind == sem.RefField
		}
		p.InstrStats.LoopsPeeled = instrument.PeelLoops(prog, isField)
		sp, err = sem.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("re-check after peeling: %w", err)
		}
		p.Sem = sp
	}

	p.Lower = lower.Lower(sp)
	p.Prog = p.Lower.Prog

	// Fact cache: when the whole-program digest matches a prior
	// compile, replay the traced-instruction sets and stats and skip
	// every analysis below.
	var cache *factcache.Cache
	var progDigest string
	if cfg.FactCacheDir != "" {
		cache = factcache.Open(cfg.FactCacheDir, factcache.Fingerprint(
			cfg.Instrument, cfg.Static, cfg.Dominators, cfg.Peeling, cfg.Interproc))
		// The digest must cover the pre-instrumentation lowering: Store
		// runs after InsertTraces has rewritten the IR.
		progDigest = cache.ProgramDigest(p.Prog)
		if ent, ok := cache.Lookup(progDigest); ok {
			if err := p.applyCached(ent); err == nil {
				p.CacheStats = cache.Stats
				return p, nil
			}
			// A stale or corrupt entry falls through to a full compile.
			cache.Stats.ProgramHit = false
		}
	}

	analysisStart := time.Now()

	// Whole-program analyses (needed for static race analysis; cheap
	// enough to run always so tools can inspect them).
	if cfg.PtsWorkers > 0 {
		p.Pts = pointsto.AnalyzeParallel(p.Prog, cfg.PtsWorkers)
	} else {
		p.Pts = pointsto.Analyze(p.Prog)
	}
	p.ICG = icfg.Build(p.Prog, p.Lower, p.Pts)
	p.Esc = escape.Analyze(p.Prog, p.Pts)

	var filter instrument.Filter
	if cfg.Static {
		var opt racestatic.Options
		if cfg.Interproc {
			opt.MustLock = icfg.BuildMustLock(p.ICG)
		}
		p.Static = racestatic.AnalyzeOpts(p.Prog, p.Pts, p.ICG, p.Esc, opt)
		filter = p.Static.Filter()
		p.Discipline = lockdiscipline.Analyze(p.Static, p.ICG, opt.MustLock, p.Esc, p.Pts)
		p.disciplineReport = p.Discipline.Report()
		for _, t := range p.Discipline.SiteTiers() {
			p.tierEntries = append(p.tierEntries, factcache.TierEntry{
				File: t.File, Line: t.Line, Col: t.Col, Write: t.Write, Tier: uint8(t.Tier),
			})
		}
		p.StaticStats = StaticStats{
			AccessSites:       len(p.Static.Sites),
			RaceSetSize:       len(p.Static.InRaceSet),
			PairCount:         len(p.Static.Pairs),
			ThreadLocalPruned: p.Static.PrunedThreadLocal,
			SameThreadPruned:  p.Static.PrunedSameThread,
			CommonSyncPruned:  p.Static.PrunedCommonSync,
			FlowSyncPruned:    p.Static.PrunedCommonSyncFlow,

			TierUnguardedPairs:    p.Discipline.UnguardedPairs,
			TierInconsistentPairs: p.Discipline.InconsistentPairs,
			TierDemotedPairs:      p.Discipline.DemotedPairs,
			TierUnguardedSites:    p.Discipline.UnguardedSites,
			TierInconsistentSites: p.Discipline.InconsistentSites,
			TierConsistentSites:   p.Discipline.ConsistentSites,
		}
	}

	if cfg.Instrument {
		var ip *instrument.Interproc
		if cfg.Dominators && cfg.Interproc {
			ip = instrument.BuildInterproc(p.Prog, p.Pts)
		}

		// Function-level cache: the latest entry for this configuration
		// lets clean call-graph components replay their traced sets and
		// skip the elimination sweep (see factcache.Dirty).
		var dirty map[*ir.Func]bool
		var semDigests map[*ir.Func]string
		var priorByName map[string]factcache.FnEntry
		var prior *factcache.Entry
		if cache != nil {
			prior, _ = cache.Latest()
			semDigests = p.semDigests(filter)
			stable := factcache.StableDigest(nil)
			if ip != nil {
				stable = factcache.StableDigest(ip.StableFields())
			}
			// Interprocedural facts couple a function's outcome to its
			// whole call-graph component; without them elimination is
			// strictly per-function, so a change dirties only itself.
			var edges map[*ir.Func][]*ir.Func
			if ip != nil {
				edges = factcache.UndirectedCallGraph(p.Prog, func(in *ir.Instr) []*ir.Func {
					return p.Pts.Callees[in]
				})
			}
			dirty = factcache.Dirty(prior, stable, p.Prog.Funcs, semDigests, edges)
			priorByName = make(map[string]factcache.FnEntry)
			if prior != nil {
				for _, fe := range prior.Fns {
					priorByName[fe.Name] = fe
				}
			}
		}

		perFnInserted := make(map[string]int, len(p.Prog.Funcs))
		for _, fn := range p.Prog.Funcs {
			if dirty != nil && !dirty[fn] {
				fe := priorByName[fn.Name]
				if replay, ok := factcache.ReplayFilter(fn, fe.Traced); ok {
					st := instrument.InsertTraces(fn, replay)
					p.InstrStats.Accesses += st.Accesses
					p.InstrStats.Inserted += fe.Inserted
					p.InstrStats.Eliminated += fe.Eliminated
					perFnInserted[fn.Name] = fe.Inserted
					cache.Stats.FnHits++
					continue
				}
				dirty[fn] = true // stale entry: recompute this function
			}
			st := instrument.InsertTraces(fn, filter)
			p.InstrStats.Accesses += st.Accesses
			p.InstrStats.Inserted += st.Inserted
			perFnInserted[fn.Name] = st.Inserted
			if cache != nil {
				cache.Stats.FnMisses++
			}
		}

		if cfg.Dominators {
			var skip func(*ir.Func) bool
			if dirty != nil {
				skip = func(fn *ir.Func) bool { return !dirty[fn] }
			}
			n, rep := instrument.EliminateProgramWith(p.Prog, ip, skip)
			p.InstrStats.Eliminated += n
			// Clean functions' eliminations are replayed from the prior
			// entry so the report stays complete.
			if prior != nil {
				for _, e := range prior.Elims {
					if fn := p.Prog.FuncByName(e.Fn); fn != nil && !dirty[fn] {
						rep.Elims = append(rep.Elims, e)
					}
				}
				rep.Sort()
			}
			p.ElimReport = rep
			p.StaticStats.ElimIntra, p.StaticStats.ElimPeel, p.StaticStats.ElimInterproc = rep.Counts()
		}

		if cache != nil {
			cache.Store(progDigest, p.cacheEntry(semDigests, perFnInserted, ip))
		}
	}
	p.StaticStats.AnalysisNs = time.Since(analysisStart).Nanoseconds()
	if cache != nil {
		p.CacheStats = cache.Stats
	}
	return p, nil
}

// semDigests computes every function's semantic digest: lowered IR
// content, per-access race-set bits, resolved callees per call site,
// and the thread-root bit (see factcache.SemDigest).
func (p *Pipeline) semDigests(filter instrument.Filter) map[*ir.Func]string {
	roots := make(map[*ir.Func]bool)
	if main := p.Prog.FuncOf[p.Prog.Sem.Main]; main != nil {
		roots[main] = true
	}
	for _, runs := range p.Pts.StartTargets {
		for _, f := range runs {
			roots[f] = true
		}
	}
	out := make(map[*ir.Func]string, len(p.Prog.Funcs))
	for _, fn := range p.Prog.Funcs {
		var bits []bool
		var tiers []uint8
		var callees []string
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.IsAccess() {
					bits = append(bits, filter == nil || filter(in))
					// The discipline tier is a semantic fact of the
					// access (0 = not in the race set, else tier+1), so
					// tier changes invalidate the function's entry like
					// race-set changes do.
					tb := uint8(0)
					if p.Discipline != nil {
						if t, ok := p.Discipline.Tier[in]; ok {
							tb = uint8(t) + 1
						}
					}
					tiers = append(tiers, tb)
				}
				if in.Op == ir.OpCall {
					names := make([]string, 0, len(p.Pts.Callees[in]))
					for _, c := range p.Pts.Callees[in] {
						names = append(names, c.Name)
					}
					callees = append(callees, strings.Join(names, "+"))
				}
			}
		}
		out[fn] = factcache.SemDigest(factcache.FnDigest(fn), bits, tiers, callees, roots[fn])
	}
	return out
}

// cacheEntry serializes the compile outcome for the fact cache.
func (p *Pipeline) cacheEntry(semDigests map[*ir.Func]string, perFnInserted map[string]int,
	ip *instrument.Interproc) *factcache.Entry {
	e := &factcache.Entry{StableDigest: factcache.StableDigest(nil)}
	if ip != nil {
		e.StableDigest = factcache.StableDigest(ip.StableFields())
	}
	elimsByFn := make(map[string]int)
	if p.ElimReport != nil {
		e.Elims = p.ElimReport.Elims
		for _, el := range p.ElimReport.Elims {
			elimsByFn[el.Fn]++
		}
	}
	for _, fn := range p.Prog.Funcs {
		accesses := 0
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.IsAccess() {
					accesses++
				}
			}
		}
		e.Fns = append(e.Fns, factcache.FnEntry{
			Name:       fn.Name,
			Digest:     semDigests[fn],
			Traced:     factcache.TracedSet(fn),
			Accesses:   accesses,
			Inserted:   perFnInserted[fn.Name],
			Eliminated: elimsByFn[fn.Name],
		})
	}
	if p.Static != nil {
		e.HintIndex = p.buildHintIndex()
	}
	e.Discipline = p.disciplineReport
	e.Tiers = p.tierEntries
	if raw, err := json.Marshal(p.StaticStats); err == nil {
		e.StaticStats = raw
	}
	return e
}

// applyCached replays a full program-level cache hit: trace sets,
// static hints, elimination report, and stats, with no analysis run.
// It validates everything before mutating the IR so a stale entry can
// fall back to a cold compile.
func (p *Pipeline) applyCached(e *factcache.Entry) error {
	byName := make(map[string]factcache.FnEntry, len(e.Fns))
	for _, fe := range e.Fns {
		byName[fe.Name] = fe
	}
	filters := make([]instrument.Filter, len(p.Prog.Funcs))
	for i, fn := range p.Prog.Funcs {
		fe, ok := byName[fn.Name]
		if !ok {
			return fmt.Errorf("factcache: no entry for %s", fn.Name)
		}
		if p.Config.Instrument {
			replay, ok := factcache.ReplayFilter(fn, fe.Traced)
			if !ok {
				return fmt.Errorf("factcache: stale trace set for %s", fn.Name)
			}
			filters[i] = replay
		}
	}
	for i, fn := range p.Prog.Funcs {
		fe := byName[fn.Name]
		if p.Config.Instrument {
			st := instrument.InsertTraces(fn, filters[i])
			p.InstrStats.Accesses += st.Accesses
			p.InstrStats.Inserted += fe.Inserted
			p.InstrStats.Eliminated += fe.Eliminated
		}
	}
	if len(e.StaticStats) > 0 {
		if err := json.Unmarshal(e.StaticStats, &p.StaticStats); err != nil {
			return err
		}
	}
	p.ElimReport = &instrument.Report{Elims: e.Elims}
	p.hintIndex = e.HintIndex
	p.disciplineReport = e.Discipline
	p.tierEntries = e.Tiers
	return nil
}

// DisciplineReport returns the rendered lock-discipline pair report
// ("" when static analysis was disabled). It is byte-identical across
// recompiles of the same program, including fact-cache program hits.
func (p *Pipeline) DisciplineReport() string { return p.disciplineReport }

// SitePriors derives the sampler's per-site prior map from the
// discipline tiers: unguarded and guarded-inconsistent sites get
// PriorHigh (pinned armed), guarded-consistent kept sites PriorLow
// (fast demotion). Sites outside the static race set are not
// instrumented and need no prior. The map is memoized and shared
// read-only by every run of the pipeline; nil when static analysis
// was disabled.
func (p *Pipeline) SitePriors() map[sitestate.Key]sitestate.Prior {
	p.priorsOnce.Do(func() {
		if len(p.tierEntries) == 0 {
			return
		}
		m := make(map[sitestate.Key]sitestate.Prior, len(p.tierEntries))
		for _, t := range p.tierEntries {
			kind := event.Read
			if t.Write {
				kind = event.Write
			}
			k := sitestate.Key{File: t.File, Line: t.Line, Col: t.Col, Kind: kind}
			if lockdiscipline.Tier(t.Tier) == lockdiscipline.GuardedConsistent {
				m[k] = sitestate.PriorLow
			} else {
				m[k] = sitestate.PriorHigh
			}
		}
		p.sitePriors = m
	})
	return p.sitePriors
}

// RunResult is one execution's outcome.
type RunResult struct {
	Config Config

	// Reports from the paper's detector (empty for baselines).
	Reports []detector.Report
	// StaticHints is aligned with Reports: for each reported race, the
	// source locations the static analysis identified as potential
	// racing partners of the reported access (§2.6's debugging
	// support). Empty when static analysis is disabled.
	StaticHints [][]string
	// BaselineReports renders baseline detectors' reports as strings.
	BaselineReports []string
	// DeadlockReports lists potential deadlocks (lock-order cycles)
	// when Config.DetectDeadlocks is set.
	DeadlockReports []string
	// ImmutabilityReports lists per-field mutability verdicts when
	// Config.AnalyzeImmutability is set.
	ImmutabilityReports []string
	// RacyObjects is the count Table 3 reports: distinct objects with
	// at least one reported race.
	RacyObjects []event.ObjID

	Interp        interp.Result
	DetectorStats detector.Stats
	TrieNodes     int
	TrieLocations int

	// Schedule is the recorded scheduling decision sequence (nil unless
	// Config.RecordSchedule was set).
	Schedule *interp.ScheduleTrace

	InstrStats  instrument.Stats
	StaticStats StaticStats
	// FactCache reports what the digest-keyed fact cache did for this
	// run's compile (zero value when Config.FactCacheDir is empty).
	// Long-running services aggregate it into their hit-rate metrics.
	FactCache factcache.Stats

	Output   string
	Duration time.Duration
	Err      error // runtime error (deadlock etc.), nil on clean exit
}

// Run executes the compiled program under the configured detector.
func (p *Pipeline) Run() (*RunResult, error) {
	return p.RunConfig(p.Config)
}

// RunConfig executes the compiled program under cfg, which may differ
// from the compile-time Config in runtime-only fields (seed, schedule,
// timeout, detector bounds...). It never mutates the Pipeline, so a
// compiled program can run many schedules concurrently — the fuzzing
// harness compiles once and calls RunConfig from its workers.
func (p *Pipeline) RunConfig(cfg Config) (*RunResult, error) {
	if tr := cfg.ReplaySchedule; tr != nil {
		// Replay fully determines the schedule; neutralize the live
		// scheduler's parameters so nothing else can perturb it.
		cfg.Seed = 0
		cfg.Quantum = tr.Quantum
	}
	if PriorsEnabled(cfg.Priors) && cfg.SitePriors == nil {
		cfg.SitePriors = p.SitePriors()
	}

	ds, err := newDetectorSinks(cfg)
	if err != nil {
		return nil, err
	}
	sink := ds.sink
	det := ds.det

	var recorder *postmortem.Recorder
	if cfg.RecordTo != nil {
		recorder = postmortem.NewRecorder(cfg.RecordTo)
		// The recorder must observe every event, including the ones
		// the detector's inlined fast path would absorb, so it wraps
		// the sink in a MultiSink (which has no fast path).
		sink = event.MultiSink{recorder, sink}
	}
	var tracer *trace.Writer
	if cfg.TraceTo != nil {
		tracer = trace.NewWriter(cfg.TraceTo)
		// Same fast-path consideration as the recorder: the binary trace
		// must capture the complete stream, so it too rides a MultiSink.
		sink = event.MultiSink{tracer, sink}
	}

	var out strings.Builder
	var w io.Writer = &out
	if cfg.Out != nil {
		w = io.MultiWriter(&out, cfg.Out)
	}
	iopts := interp.Options{
		Sink:           sink,
		Out:            w,
		Quantum:        cfg.Quantum,
		Seed:           cfg.Seed,
		MaxSteps:       cfg.MaxSteps,
		RecordSchedule: cfg.RecordSchedule,
		Replay:         cfg.ReplaySchedule,
		LivelockWindow: cfg.LivelockWindow,
		BatchSize:      cfg.BatchSize,
	}
	if cfg.Timeout > 0 {
		iopts.Deadline = time.Now().Add(cfg.Timeout)
	}
	machine := interp.New(p.Prog, iopts)
	if det != nil {
		det.SetDescribeObj(machine.DescribeObj)
	}

	start := time.Now()
	res, err := machine.Run()
	dur := time.Since(start)
	if recorder != nil {
		if ferr := recorder.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if tracer != nil {
		// Capture object descriptions from the final heap — the one
		// report ingredient replay cannot re-derive from events — then
		// finalize unconditionally: a run cut short by a runtime error
		// still leaves a valid (partial) trace on disk.
		tracer.SetDescribeObj(machine.DescribeObj)
		if terr := tracer.Finalize(); terr != nil && err == nil {
			err = terr
		}
	}

	rr := &RunResult{
		Config:      cfg,
		Interp:      res,
		InstrStats:  p.InstrStats,
		StaticStats: p.StaticStats,
		FactCache:   p.CacheStats,
		Output:      out.String(),
		Duration:    dur,
		Err:         err,
		Schedule:    machine.Schedule(),
	}
	ds.harvest(rr)
	if ds.det != nil {
		rr.StaticHints = p.staticHints(rr.Reports)
	}
	return rr, nil
}

// detectorSinks bundles one run's detector stack — the configured
// back end plus any auxiliary analyses — so a live run (RunConfig) and
// an offline trace replay (ReplayTrace) construct and harvest exactly
// the same sinks.
type detectorSinks struct {
	sink event.Sink
	det  detector.Backend
	era  *eraser.Detector
	obr  *objectrace.Detector
	vcl  *vclock.Detector
	dl   *deadlock.Detector
	imm  *immutable.Detector
}

func newDetectorSinks(cfg Config) (*detectorSinks, error) {
	ds := &detectorSinks{}
	switch cfg.Detector {
	case DetTrie:
		dopts := detector.Options{
			NoCache:           !cfg.Cache,
			NoOwnership:       !cfg.Ownership,
			FieldsMerged:      cfg.FieldsMerged,
			NoPseudoLocks:     !cfg.PseudoLocks,
			ReportAll:         cfg.ReportAll,
			PackedTrie:        cfg.PackedTrie,
			MaxTrieNodes:      cfg.MaxTrieNodes,
			MaxCacheThreads:   cfg.MaxCacheThreads,
			MaxOwnerLocations: cfg.MaxOwnerLocations,
			SampleK:           cfg.SampleK,
			SampleBudget:      cfg.SampleBudget,
		}
		if PriorsEnabled(cfg.Priors) {
			dopts.Priors = cfg.SitePriors
			dopts.InvertPriors = cfg.Priors == "invert"
		}
		if cfg.Shards >= 1 {
			dopts.JournalCap = cfg.JournalCap
			dopts.RetryBudget = cfg.RetryBudget
			dopts.QueueDepth = cfg.ShardQueueDepth
			dopts.DropOnBackpressure = cfg.DropOnBackpressure
			dopts.Faults = cfg.Faults
			if cfg.FaultSpec != "" && dopts.Faults == nil {
				plan, err := faultinject.Parse(cfg.FaultSpec)
				if err != nil {
					return nil, fmt.Errorf("fault injection: %w", err)
				}
				if !plan.Empty() {
					dopts.Faults = plan
				}
			}
			ds.det = detector.NewSharded(dopts, cfg.Shards, cfg.BatchSize)
		} else {
			ds.det = detector.New(dopts)
		}
		ds.sink = ds.det
	case DetEraser:
		ds.era = eraser.New()
		ds.sink = ds.era
	case DetObjectRace:
		ds.obr = objectrace.New()
		ds.sink = ds.obr
	case DetVClock:
		ds.vcl = vclock.New()
		ds.sink = ds.vcl
	default:
		ds.sink = event.NullSink{}
	}
	if cfg.DetectDeadlocks {
		ds.dl = deadlock.New()
		ds.sink = event.MultiSink{ds.dl, ds.sink}
	}
	if cfg.AnalyzeImmutability {
		ds.imm = immutable.New()
		ds.sink = event.MultiSink{ds.imm, ds.sink}
	}
	return ds, nil
}

// harvest collects the detector stack's verdicts into rr. For the trie
// back end a backend error surfaces as rr.Err unless the run already
// failed for another reason.
func (ds *detectorSinks) harvest(rr *RunResult) {
	if ds.dl != nil {
		for _, r := range ds.dl.Reports() {
			rr.DeadlockReports = append(rr.DeadlockReports, r.String())
		}
	}
	if ds.imm != nil {
		for _, r := range ds.imm.Reports() {
			rr.ImmutabilityReports = append(rr.ImmutabilityReports, r.String())
		}
	}
	switch {
	case ds.det != nil:
		rr.Reports = ds.det.Reports()
		rr.RacyObjects = ds.det.RacyObjects()
		rr.DetectorStats = ds.det.Stats()
		rr.TrieNodes = ds.det.TrieNodeCount()
		rr.TrieLocations = ds.det.TrieLocationCount()
		if berr := ds.det.Err(); berr != nil && rr.Err == nil {
			rr.Err = berr
		}
	case ds.era != nil:
		for _, r := range ds.era.Reports() {
			rr.BaselineReports = append(rr.BaselineReports, r.String())
		}
		rr.RacyObjects = ds.era.RacyObjects()
	case ds.obr != nil:
		for _, r := range ds.obr.Reports() {
			rr.BaselineReports = append(rr.BaselineReports, r.String())
		}
		rr.RacyObjects = ds.obr.RacyObjects()
	case ds.vcl != nil:
		for _, r := range ds.vcl.Reports() {
			rr.BaselineReports = append(rr.BaselineReports, r.String())
		}
		rr.RacyObjects = ds.vcl.RacyObjects()
	}
}

// ReplayTrace streams a recorded binary trace (produced via
// Config.TraceTo) into a fresh detector stack configured by cfg —
// serial or sharded, any ablation — without compiling or interpreting
// anything. parallel bounds the segment-decode workers (<= 0 selects
// GOMAXPROCS); delivery is always in recorded order. The detectors
// reconstruct locksets from the replayed monitor events exactly as
// they do live, so at the recording configuration the verdicts are
// byte-identical to the live run's. A corrupt or truncated trace
// surfaces as a *trace.FormatError.
func ReplayTrace(tr *trace.Reader, cfg Config, parallel int) (*RunResult, error) {
	ds, err := newDetectorSinks(cfg)
	if err != nil {
		return nil, err
	}
	if ds.det != nil {
		ds.det.SetDescribeObj(tr.DescribeObj)
	}
	start := time.Now()
	stats, rerr := tr.Replay(ds.sink, parallel)
	if rerr != nil {
		// Make sure a partially-fed sharded back end shuts down before
		// the error propagates.
		if ds.det != nil {
			_ = ds.det.Err()
		}
		return nil, rerr
	}
	rr := &RunResult{
		Config:   cfg,
		Duration: time.Since(start),
	}
	rr.Interp.TraceEvents = stats.Accesses
	ds.harvest(rr)
	return rr, nil
}

// staticHints maps each runtime report to the static may-race
// partners of the reported statement (§2.6): the statements whose
// execution could potentially race with the reported access, usually a
// small set that pinpoints the other side of the bug in the source.
func (p *Pipeline) staticHints(reports []detector.Report) [][]string {
	hints := make([][]string, len(reports))
	// Index the static pairs by each side's source position. The pairs
	// are fixed after Compile, so the index is built once per Pipeline;
	// a cache hit preloads it (applyCached) instead.
	p.hintOnce.Do(func() {
		if p.hintIndex == nil && p.Static != nil {
			p.hintIndex = p.buildHintIndex()
		}
	})
	if p.hintIndex == nil {
		return hints
	}
	for i, r := range reports {
		hints[i] = p.hintIndex[r.Access.Pos.String()]
	}
	return hints
}

// buildHintIndex maps each statically racy source position to its
// may-race partners' positions.
func (p *Pipeline) buildHintIndex() map[string][]string {
	partners := make(map[string][]string)
	add := func(at, other racestatic.AccessSite) {
		key := at.Instr.Pos.String()
		val := fmt.Sprintf("%s (%s)", other.Instr.Pos, other.Fn.Name)
		for _, existing := range partners[key] {
			if existing == val {
				return
			}
		}
		partners[key] = append(partners[key], val)
	}
	for _, pair := range p.Static.Pairs {
		add(pair[0], pair[1])
		add(pair[1], pair[0])
	}
	return partners
}

// RunSource compiles and runs in one step.
func RunSource(file, src string, cfg Config) (*RunResult, error) {
	p, err := Compile(file, src, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// ReplayLog performs post-mortem detection: it feeds a recorded event
// log (produced via Config.RecordTo) into a fresh detector configured
// by cfg and returns its reports. The detector sees exactly the same
// event stream as the on-the-fly run, so the reports match (tested in
// postmortem_test.go).
func ReplayLog(r io.Reader, cfg Config) (*RunResult, error) {
	det := detector.New(detector.Options{
		NoCache:       !cfg.Cache,
		NoOwnership:   !cfg.Ownership,
		FieldsMerged:  cfg.FieldsMerged,
		NoPseudoLocks: !cfg.PseudoLocks,
		ReportAll:     cfg.ReportAll,
	})
	start := time.Now()
	n, err := postmortem.Replay(r, det)
	if err != nil {
		return nil, err
	}
	rr := &RunResult{
		Config:        cfg,
		Reports:       det.Reports(),
		RacyObjects:   det.RacyObjects(),
		DetectorStats: det.Stats(),
		TrieNodes:     det.TrieNodeCount(),
		TrieLocations: det.TrieLocationCount(),
		Duration:      time.Since(start),
	}
	rr.Interp.TraceEvents = rr.DetectorStats.Accesses
	_ = n
	return rr, nil
}
