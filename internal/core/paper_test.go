package core

import (
	"strings"
	"testing"
)

// figure2 is §2.2's example, transliterated to MJ (see also
// examples/quickstart). T11:a.f and T14:b.f race with T21:d.f; T01:x.f
// does not because start() orders it before the children.
const figure2 = `
class Shared { int f; int g; }

class T1 extends Thread {
    Shared a; Shared b; Shared p;
    T1(Shared obj, Shared lock) { a = obj; b = obj; p = lock; }
    synchronized void foo() {
        a.f = 50;
        synchronized (p) { b.g = b.f; }
    }
    void run() { foo(); }
}

class T2 extends Thread {
    Shared d; Shared q;
    T2(Shared obj, Shared lock) { d = obj; q = lock; }
    void bar() { synchronized (q) { d.f = 10; } }
    void run() { bar(); }
}

class Main {
    static Shared x;
    static void main() {
        x = new Shared();
        x.f = 100;
        Shared lockP = new Shared();
        Shared lockQ = new Shared();
        Thread t1 = new T1(x, lockP);
        Thread t2 = new T2(x, lockQ);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        print(x.f);
    }
}
`

func TestFigure2RaceDetected(t *testing.T) {
	for _, seed := range []int64{0, 1, 5, 11} {
		res, err := RunSource("fig2.mj", figure2, Full().WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Err != nil {
			t.Fatalf("seed %d: runtime: %v", seed, res.Err)
		}
		if len(res.RacyObjects) != 1 {
			t.Fatalf("seed %d: racy objects = %v, want exactly the shared object", seed, res.RacyObjects)
		}
		for _, r := range res.Reports {
			if r.Access.FieldName != "Shared.f" {
				t.Errorf("seed %d: race on %s, want Shared.f", seed, r.Access.FieldName)
			}
		}
	}
}

// figure2Aliased is the §2.2 variant where T13:p and T20:q point to
// the SAME lock object. The happens-before baseline sees the lock
// transfer and goes quiet (the race is merely feasible); the paper's
// lockset detector still reports T11 vs T21.
const figure2Aliased = `
class Shared { int f; int g; }

class T1 extends Thread {
    Shared a; Shared b; Shared p;
    T1(Shared obj, Shared lock) { a = obj; b = obj; p = lock; }
    synchronized void foo() {
        a.f = 50;
        synchronized (p) { b.g = b.f; }
    }
    void run() { foo(); }
}

class T2 extends Thread {
    Shared d; Shared q;
    T2(Shared obj, Shared lock) { d = obj; q = lock; }
    void bar() { synchronized (q) { d.f = 10; } }
    void run() { bar(); }
}

class Main {
    static Shared x;
    static void main() {
        x = new Shared();
        x.f = 100;
        Shared common = new Shared();
        Thread t1 = new T1(x, common);
        Thread t2 = new T2(x, common);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        print(x.f);
    }
}
`

func TestFigure2FeasibleVsActual(t *testing.T) {
	// The paper's detector reports the feasible race regardless of the
	// observed lock order.
	res, err := RunSource("fig2b.mj", figure2Aliased, Full())
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	if len(res.RacyObjects) != 1 {
		t.Fatalf("lockset detector: racy objects = %v, want 1", res.RacyObjects)
	}
	// The happens-before baseline stays quiet when T1's critical
	// section is observed before T2's (the default schedule runs T1
	// first).
	resHB, err := RunSource("fig2b.mj", figure2Aliased, Full().WithDetector(DetVClock))
	if err != nil || resHB.Err != nil {
		t.Fatalf("%v / %v", err, resHB.Err)
	}
	if len(resHB.RacyObjects) != 0 {
		t.Skipf("observed schedule left the accesses unordered; HB reported %d (legitimate)", len(resHB.RacyObjects))
	}
}

// TestJoinPseudolockIdiom is §8.3's mtrt statistics example end to
// end: our detector is quiet, Eraser reports.
func TestJoinPseudolockIdiom(t *testing.T) {
	const src = `
class Stats { int total; }
class Child extends Thread {
    Stats stats; Stats syncObject; int work;
    Child(Stats s, Stats lock, int w) { stats = s; syncObject = lock; work = w; }
    void run() {
        synchronized (syncObject) { stats.total = stats.total + work; }
    }
}
class Main {
    static void main() {
        Stats stats = new Stats();
        Stats lock = new Stats();
        Child c1 = new Child(stats, lock, 10);
        Child c2 = new Child(stats, lock, 20);
        c1.start(); c2.start();
        c1.join(); c2.join();
        print(stats.total);
    }
}`
	full, err := RunSource("join.mj", src, Full())
	if err != nil || full.Err != nil {
		t.Fatalf("%v / %v", err, full.Err)
	}
	if len(full.RacyObjects) != 0 {
		t.Errorf("pseudolocks should silence the idiom, got %v", full.Reports)
	}
	if strings.TrimSpace(full.Output) != "30" {
		t.Errorf("output = %q", full.Output)
	}

	noPseudo := Full()
	noPseudo.PseudoLocks = false
	np, err := RunSource("join.mj", src, noPseudo)
	if err != nil || np.Err != nil {
		t.Fatalf("%v / %v", err, np.Err)
	}
	if len(np.RacyObjects) == 0 {
		t.Error("without pseudolocks the parent read must be reported")
	}

	eraser, err := RunSource("join.mj", src, Full().WithDetector(DetEraser))
	if err != nil || eraser.Err != nil {
		t.Fatalf("%v / %v", err, eraser.Err)
	}
	if len(eraser.RacyObjects) == 0 {
		t.Error("Eraser's single-common-lock rule must report the idiom")
	}
}

// TestWeakerThanOptimizationsPreserveReports is the §7.2 experimental
// verification: the same races are reported with the (theoretically
// unsafe) weaker-than optimizations enabled and disabled.
func TestWeakerThanOptimizationsPreserveReports(t *testing.T) {
	srcs := map[string]string{"racy": racySrc, "sync": syncSrc, "fig2": figure2}
	for name, src := range srcs {
		var counts []int
		for _, cfg := range []Config{
			Full(),
			Full().NoDominators(),
			Full().NoCache(),
			Full().NoDominators().NoCache(),
		} {
			res, err := RunSource(name+".mj", src, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Err != nil {
				t.Fatalf("%s: runtime: %v", name, res.Err)
			}
			counts = append(counts, len(res.RacyObjects))
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Errorf("%s: optimization changed reports: %v", name, counts)
			}
		}
	}
}

func TestSeedSweepStability(t *testing.T) {
	// The lockset detector must find the racy program's race under
	// every seed and stay quiet on the synchronized program.
	for seed := int64(0); seed < 8; seed++ {
		racy, err := RunSource("racy.mj", racySrc, Full().WithSeed(seed))
		if err != nil || racy.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, racy.Err)
		}
		if len(racy.RacyObjects) != 1 {
			t.Errorf("seed %d: racy program reported %d objects", seed, len(racy.RacyObjects))
		}
		quiet, err := RunSource("sync.mj", syncSrc, Full().WithSeed(seed))
		if err != nil || quiet.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, quiet.Err)
		}
		if len(quiet.RacyObjects) != 0 {
			t.Errorf("seed %d: synchronized program reported %v", seed, quiet.Reports)
		}
	}
}

func TestBaseConfigRunsClean(t *testing.T) {
	res, err := RunSource("racy.mj", racySrc, Base())
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	if res.Interp.TraceEvents != 0 {
		t.Errorf("Base must not execute traces, got %d", res.Interp.TraceEvents)
	}
	if len(res.Reports) != 0 {
		t.Errorf("Base has no detector, got %v", res.Reports)
	}
}

func TestCompileErrorSurface(t *testing.T) {
	if _, err := RunSource("bad.mj", "class {", Full()); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := RunSource("bad.mj", "class A { void m() { x = 1; } }", Full()); err == nil {
		t.Error("type error must surface")
	}
}

func TestReportCarriesDebugInfo(t *testing.T) {
	res, err := RunSource("racy.mj", racySrc, Full())
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("want a report")
	}
	r := res.Reports[0]
	if r.Access.Pos.Line == 0 {
		t.Error("report lacks a source position")
	}
	if r.Access.FieldName == "" {
		t.Error("report lacks the field name")
	}
	if r.ObjDesc == "" || !strings.Contains(r.ObjDesc, "Data#") {
		t.Errorf("report lacks the object description: %q", r.ObjDesc)
	}
	if len(r.Access.Locks) == 0 {
		t.Error("current lockset should at least contain the thread pseudolock")
	}
	// The prior lockset is part of the §2.6 debugging contract.
	if r.PriorLocks == nil {
		t.Error("prior lockset missing")
	}
}

func TestStatsAreConsistent(t *testing.T) {
	res, err := RunSource("racy.mj", racySrc, Full())
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	st := res.DetectorStats
	if st.Accesses != res.Interp.TraceEvents {
		t.Errorf("detector accesses %d != interp trace events %d", st.Accesses, res.Interp.TraceEvents)
	}
	// Every access is either a cache hit, an ownership skip, or a trie
	// event.
	if st.CacheHits+st.OwnerSkips+st.Trie.Events != st.Accesses {
		t.Errorf("access accounting broken: hits=%d + skips=%d + trie=%d != %d",
			st.CacheHits, st.OwnerSkips, st.Trie.Events, st.Accesses)
	}
}
