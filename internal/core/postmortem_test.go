package core

import (
	"strings"
	"testing"

	"racedet/internal/rt/postmortem"
)

// TestPostMortemMatchesOnTheFly records the racy smoke program's event
// log during an on-the-fly run, replays it off-line, and checks the
// reports agree — the §1 post-mortem mode.
func TestPostMortemMatchesOnTheFly(t *testing.T) {
	var log strings.Builder
	cfg := Full()
	cfg.RecordTo = &log

	online, err := RunSource("racy.mj", racySrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if online.Err != nil {
		t.Fatal(online.Err)
	}
	if log.Len() == 0 {
		t.Fatal("no events recorded")
	}

	offline, err := ReplayLog(strings.NewReader(log.String()), Full())
	if err != nil {
		t.Fatal(err)
	}

	if len(online.RacyObjects) != len(offline.RacyObjects) {
		t.Fatalf("online %v vs offline %v racy objects", online.RacyObjects, offline.RacyObjects)
	}
	for i := range online.RacyObjects {
		if online.RacyObjects[i] != offline.RacyObjects[i] {
			t.Fatalf("racy objects differ: %v vs %v", online.RacyObjects, offline.RacyObjects)
		}
	}
	if len(offline.Reports) == 0 || offline.Reports[0].Access.FieldName != "Data.f" {
		t.Fatalf("offline reports = %v", offline.Reports)
	}
}

// TestPostMortemFullRace reconstructs the complete racing-pair set
// from the log (§2.5's FullRace, deliberately not computed on the fly).
func TestPostMortemFullRace(t *testing.T) {
	var log strings.Builder
	cfg := Full()
	cfg.RecordTo = &log
	if _, err := RunSource("racy.mj", racySrc, cfg); err != nil {
		t.Fatal(err)
	}

	pairs, err := postmortem.FullRace(strings.NewReader(log.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("FullRace found nothing")
	}
	// Every pair is on Data.f, between distinct threads.
	for _, p := range pairs {
		if p.First.FieldName != "Data.f" || p.Second.FieldName != "Data.f" {
			t.Errorf("unexpected pair %v", p)
		}
		if p.First.Thread == p.Second.Thread {
			t.Errorf("same-thread pair %v", p)
		}
	}
	// FullRace is a superset view: the on-the-fly detector reported
	// one access for the location, FullRace enumerates all pairs.
	if len(pairs) < 1 {
		t.Errorf("pairs = %d", len(pairs))
	}
}

// TestRecordingDoesNotChangeDetection guards the MultiSink wiring: the
// recorder disables the inlined cache fast path (MultiSink has none),
// which must not alter what is reported.
func TestRecordingDoesNotChangeDetection(t *testing.T) {
	plain, err := RunSource("racy.mj", racySrc, Full())
	if err != nil || plain.Err != nil {
		t.Fatalf("%v/%v", err, plain.Err)
	}
	var log strings.Builder
	cfg := Full()
	cfg.RecordTo = &log
	recorded, err := RunSource("racy.mj", racySrc, cfg)
	if err != nil || recorded.Err != nil {
		t.Fatalf("%v/%v", err, recorded.Err)
	}
	if len(plain.RacyObjects) != len(recorded.RacyObjects) {
		t.Errorf("recording changed detection: %v vs %v", plain.RacyObjects, recorded.RacyObjects)
	}
}
