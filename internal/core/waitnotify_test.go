package core

import (
	"strings"
	"testing"
)

// TestWaitNotifyDetection: the detector's lockset tracking must
// survive Object.wait's release/re-acquire — properly guarded state is
// quiet, an unguarded side channel still races.
func TestWaitNotifyDetection(t *testing.T) {
	const src = `
class Box {
    int value;
    boolean full;
    int sideChannel; // written without the monitor: the race

    synchronized void put(int v) {
        while (full) { this.wait(); }
        value = v;
        full = true;
        this.notifyAll();
    }

    synchronized int take() {
        while (!full) { this.wait(); }
        full = false;
        this.notifyAll();
        return value;
    }
}
class Producer extends Thread {
    Box box;
    Producer(Box b) { box = b; }
    void run() {
        for (int i = 1; i <= 15; i++) {
            box.put(i);
            box.sideChannel = i; // unguarded
        }
    }
}
class Consumer extends Thread {
    Box box;
    int sum;
    Consumer(Box b) { box = b; sum = 0; }
    void run() {
        for (int i = 0; i < 15; i++) {
            sum = sum + box.take();
            sum = sum + box.sideChannel % 2; // unguarded
        }
    }
}
class Main {
    static void main() {
        Box b = new Box();
        Producer p = new Producer(b);
        Consumer c = new Consumer(b);
        c.start();
        p.start();
        p.join();
        c.join();
        print(c.sum);
    }
}`
	for _, seed := range []int64{0, 3, 9} {
		res, err := RunSource("wn.mj", src, Full().WithSeed(seed))
		if err != nil || res.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, res.Err)
		}
		var fields []string
		for _, r := range res.Reports {
			fields = append(fields, r.Access.FieldName)
		}
		joined := strings.Join(fields, ",")
		if !strings.Contains(joined, "Box.sideChannel") {
			t.Errorf("seed %d: unguarded field not reported: %v", seed, fields)
		}
		for _, f := range fields {
			if f == "Box.value" || f == "Box.full" {
				t.Errorf("seed %d: monitor-guarded field %s reported as racy", seed, f)
			}
		}
	}
}
