package core

import (
	"fmt"
	"strings"

	"racedet/internal/instrument"
	"racedet/internal/ir"
	"racedet/internal/lang/token"
)

// FactsReport renders the per-access-site keep/kill decisions of the
// static phase (mjdump -facts, racedet -explain-static): for every heap
// access, which §5 condition killed its instrumentation — escape
// analysis, MustSameThread, MustCommonSync — or, for accesses that
// stayed in the race set, whether its trace survived the §6 weaker-than
// elimination and which elimination (intraprocedural, loop peeling,
// interprocedural) removed it.
func (p *Pipeline) FactsReport() string {
	var b strings.Builder
	if p.Static == nil {
		b.WriteString("static analysis disabled: every heap access is traced\n")
		return b.String()
	}

	// An access is traced iff an OpTrace immediately follows it in the
	// instrumented IR.
	traced := make(map[*ir.Instr]bool)
	for _, fn := range p.Prog.Funcs {
		for _, blk := range fn.Blocks {
			for i, in := range blk.Instrs {
				if in.IsAccess() && i+1 < len(blk.Instrs) && blk.Instrs[i+1].Op == ir.OpTrace {
					traced[in] = true
				}
			}
		}
	}
	// Eliminations by (function, position): peeling clones positions,
	// so a position can map to several entries.
	type elimKey struct {
		fn  string
		pos token.Pos
	}
	elims := make(map[elimKey][]instrument.Elim)
	if p.ElimReport != nil {
		for _, e := range p.ElimReport.Elims {
			k := elimKey{e.Fn, e.Pos}
			elims[k] = append(elims[k], e)
		}
	}

	// Sites come out of the static phase already in canonical
	// (file, line, col, kind) order; no per-caller sorting.
	sites := p.Static.Sites

	var kept, killed, elimSites int
	for _, s := range sites {
		v := p.Static.Verdicts[s.Instr]
		if v == nil {
			continue
		}
		kind, isArray, _, field := s.Instr.AccessInfo()
		name := "[]"
		if field != nil {
			name = field.QualifiedName()
		}
		if isArray {
			name += "[]"
		}
		fmt.Fprintf(&b, "%-5s %-20s %s (%s)\n", kind, name, s.Instr.Pos, s.Fn.Name)

		switch {
		case v.ThreadLocal:
			killed++
			if field != nil && p.Esc != nil && p.Esc.ThreadSpecificField(field) {
				b.WriteString("      kill: thread-specific field (escape analysis, §5.4)\n")
			} else {
				b.WriteString("      kill: thread-local (escape analysis, §5.4)\n")
			}
		case v.Racy > 0:
			kept++
			fmt.Fprintf(&b, "      keep: %d surviving may-race pair(s) of %d examined\n", v.Racy, v.Pairs)
			if p.Discipline != nil {
				if t, ok := p.Discipline.Tier[s.Instr]; ok {
					fmt.Fprintf(&b, "      tier: %s\n", t)
				}
			}
			if field != nil && !field.Static && p.Esc != nil &&
				field.Class.IsThread() && p.Esc.UnsafeThread(field.Class) {
				b.WriteString("      note: unsafe thread class — construction may overlap its execution\n")
			}
			switch {
			case traced[s.Instr]:
				b.WriteString("      trace: inserted\n")
			case len(elims[elimKey{s.Fn.Name, s.Instr.Pos}]) > 0:
				elimSites++
				for _, e := range elims[elimKey{s.Fn.Name, s.Instr.Pos}] {
					switch e.Kind {
					case instrument.KindInterproc:
						fmt.Fprintf(&b, "      trace: eliminated interprocedurally, covered in %s at %s\n", e.ByFn, e.ByPos)
					case instrument.KindPeel:
						fmt.Fprintf(&b, "      trace: eliminated by loop peeling, peeled copy at %s\n", e.ByPos)
					default:
						fmt.Fprintf(&b, "      trace: eliminated by weaker trace at %s\n", e.ByPos)
					}
				}
			default:
				// Peeling can clone an access: the original is traced
				// under another instruction identity.
				b.WriteString("      trace: none at this site\n")
			}
		case v.CommonSync > 0:
			killed++
			if v.FlowSync > 0 {
				fmt.Fprintf(&b, "      kill: must-common-sync (%d pair(s), %d via must-lock dataflow)\n", v.CommonSync, v.FlowSync)
			} else {
				fmt.Fprintf(&b, "      kill: must-common-sync (%d pair(s))\n", v.CommonSync)
			}
		case v.SameThread > 0:
			killed++
			fmt.Fprintf(&b, "      kill: must-same-thread (%d pair(s))\n", v.SameThread)
		default:
			killed++
			b.WriteString("      kill: no conflicting access pair\n")
		}
	}

	fmt.Fprintf(&b, "sites: %d  kept: %d  killed: %d\n", len(sites), kept, killed)
	if p.ElimReport != nil {
		intra, peel, inter := p.ElimReport.Counts()
		fmt.Fprintf(&b, "eliminations: intra=%d peel=%d interproc=%d\n", intra, peel, inter)
	}
	return b.String()
}
