package core

import (
	"strings"
	"testing"
)

// TestStaticHintsPointAtPartner verifies §2.6: a runtime report is
// accompanied by the static may-race partner locations, which point at
// the other side of the bug.
func TestStaticHintsPointAtPartner(t *testing.T) {
	src := `
class Data { int f; }
class Writer extends Thread {
    Data d;
    Writer(Data d0) { d = d0; }
    void run() {
        d.f = 1;        // line 7: one side of the race
    }
}
class Reader extends Thread {
    Data d;
    int got;
    Reader(Data d0) { d = d0; }
    void run() {
        got = d.f;      // line 15: the other side
    }
}
class Main {
    static void main() {
        Data x = new Data();
        x.f = 0;
        Writer w = new Writer(x);
        Reader r = new Reader(x);
        w.start(); r.start();
        w.join(); r.join();
        print(r.got);
    }
}`
	res, err := RunSource("hint.mj", src, Full())
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("expected a race report")
	}
	if len(res.StaticHints) != len(res.Reports) {
		t.Fatalf("hints misaligned: %d vs %d", len(res.StaticHints), len(res.Reports))
	}
	hints := res.StaticHints[0]
	if len(hints) == 0 {
		t.Fatalf("report carries no static partner hints; report = %v", res.Reports[0])
	}
	// The reported access is in one run method; the partner hint must
	// name the other (Writer.run at line 8 or Reader.run at line 16).
	joined := strings.Join(hints, " | ")
	reportLine := res.Reports[0].Access.Pos.Line
	var wantOther string
	if reportLine == 7 {
		wantOther = "hint.mj:15"
	} else {
		wantOther = "hint.mj:7"
	}
	if !strings.Contains(joined, wantOther) {
		t.Errorf("hints %q do not name the partner %s (report at line %d)", joined, wantOther, reportLine)
	}
}

// TestStaticHintsEmptyWithoutStatic: NoStatic has no pair information.
func TestStaticHintsEmptyWithoutStatic(t *testing.T) {
	res, err := RunSource("racy.mj", racySrc, Full().NoStatic())
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	for _, h := range res.StaticHints {
		if len(h) != 0 {
			t.Fatalf("NoStatic run produced hints: %v", h)
		}
	}
}
