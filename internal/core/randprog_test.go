package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"racedet/internal/rt/event"
	"racedet/internal/rt/postmortem"
)

// progGen emits random well-formed MJ programs: a few shared objects,
// a few locks, worker threads whose bodies mix locked and unlocked
// field accesses, loops, conditionals, and helper calls. The generator
// is seeded, so every failure is reproducible.
type progGen struct {
	rng     *rand.Rand
	sb      strings.Builder
	nShared int
	nLocks  int
	depth   int
}

func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.nShared = 2 + g.rng.Intn(2)
	g.nLocks = 1 + g.rng.Intn(2)
	g.emit()
	return g.sb.String()
}

func (g *progGen) pf(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *progGen) emit() {
	g.pf("class Shared { int f0; int f1; int f2; static int counter; }\n")
	g.pf("class Lock { int pad; }\n")
	g.pf("class Worker extends Thread {\n")
	for i := 0; i < g.nShared; i++ {
		g.pf("    Shared s%d;\n", i)
	}
	for i := 0; i < g.nLocks; i++ {
		g.pf("    Lock l%d;\n", i)
	}
	g.pf("    int[] buf;\n")
	g.pf("    int acc;\n")
	// Constructor wiring every shared object and lock.
	g.pf("    Worker(")
	var params []string
	for i := 0; i < g.nShared; i++ {
		params = append(params, fmt.Sprintf("Shared a%d", i))
	}
	for i := 0; i < g.nLocks; i++ {
		params = append(params, fmt.Sprintf("Lock b%d", i))
	}
	params = append(params, "int[] bb")
	g.pf("%s) {\n", strings.Join(params, ", "))
	for i := 0; i < g.nShared; i++ {
		g.pf("        s%d = a%d;\n", i, i)
	}
	for i := 0; i < g.nLocks; i++ {
		g.pf("        l%d = b%d;\n", i, i)
	}
	g.pf("        buf = bb;\n")
	g.pf("        acc = 0;\n    }\n")

	// A helper method with its own accesses (exercises call edges in
	// the static analyses and call barriers in the elimination).
	g.pf("    int probe(Shared s) {\n")
	g.pf("        return s.f%d + 1;\n", g.rng.Intn(3))
	g.pf("    }\n")

	g.pf("    void run() {\n")
	g.depth = 0
	n := 3 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.pf("    }\n")
	g.pf("}\n")

	// Main: build the world, start 2-3 workers, join them.
	workers := 2 + g.rng.Intn(2)
	g.pf("class Main {\n    static void main() {\n")
	var args []string
	for i := 0; i < g.nShared; i++ {
		g.pf("        Shared s%d = new Shared();\n", i)
		g.pf("        s%d.f0 = %d;\n", i, g.rng.Intn(10))
		args = append(args, fmt.Sprintf("s%d", i))
	}
	for i := 0; i < g.nLocks; i++ {
		g.pf("        Lock l%d = new Lock();\n", i)
		args = append(args, fmt.Sprintf("l%d", i))
	}
	g.pf("        int[] shared = new int[8];\n")
	g.pf("        shared[0] = 1;\n")
	args = append(args, "shared")
	for w := 0; w < workers; w++ {
		g.pf("        Worker w%d = new Worker(%s);\n", w, strings.Join(args, ", "))
	}
	for w := 0; w < workers; w++ {
		g.pf("        w%d.start();\n", w)
	}
	for w := 0; w < workers; w++ {
		g.pf("        w%d.join();\n", w)
	}
	g.pf("        int total = 0;\n")
	for w := 0; w < workers; w++ {
		g.pf("        total = total + w%d.acc;\n", w)
	}
	g.pf("        print(total);\n    }\n}\n")
}

// stmt emits one random statement at the given remaining nesting depth.
func (g *progGen) stmt(depth int) {
	ind := strings.Repeat("    ", 2+g.depth)
	s := g.rng.Intn(10)
	sh := g.rng.Intn(g.nShared)
	fl := g.rng.Intn(3)
	switch {
	case s < 3 && depth > 0: // synchronized block
		g.pf("%ssynchronized (l%d) {\n", ind, g.rng.Intn(g.nLocks))
		g.depth++
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			g.stmt(depth - 1)
		}
		g.depth--
		g.pf("%s}\n", ind)
	case s < 5 && depth > 0: // loop
		g.pf("%sfor (int i%d = 0; i%d < %d; i%d++) {\n", ind, g.depth, g.depth, 2+g.rng.Intn(4), g.depth)
		g.depth++
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			g.stmt(depth - 1)
		}
		g.depth--
		g.pf("%s}\n", ind)
	case s < 6 && depth > 0: // conditional on shared state
		g.pf("%sif (s%d.f%d %% 2 == 0) {\n", ind, sh, fl)
		g.depth++
		g.stmt(depth - 1)
		g.depth--
		g.pf("%s}\n", ind)
	case s < 7: // shared field write
		g.pf("%ss%d.f%d = s%d.f%d + %d;\n", ind, sh, fl, sh, g.rng.Intn(3), 1+g.rng.Intn(5))
	case s < 8:
		switch g.rng.Intn(3) {
		case 0: // shared array traffic (one location per array)
			g.pf("%sbuf[%d] = buf[%d] + 1;\n", ind, g.rng.Intn(8), g.rng.Intn(8))
		case 1: // static field traffic
			g.pf("%sShared.counter = Shared.counter + 1;\n", ind)
		default:
			g.pf("%sacc = acc + buf[%d];\n", ind, g.rng.Intn(8))
		}
	case s < 9: // shared read into acc
		g.pf("%sacc = acc + s%d.f%d;\n", ind, sh, fl)
	default: // helper call
		g.pf("%sacc = acc + probe(s%d);\n", ind, sh)
	}
}

// TestRandomProgramsConfigAgreement is the §7.2 soundness net at
// scale. Trace pseudo-instructions do not consume scheduler quantum,
// so every configuration observes the same program schedule and the
// reports are comparable. Two tiers of guarantee:
//
//   - NoStatic, NoCache, and the packed trie must match Full exactly
//     (they are pure representation/filter changes);
//   - NoDominators and NoPeeling must report a SUPERSET of Full: the
//     compile-time weaker-than elimination can, in combination with
//     the ownership model, suppress a race (§7.2's acknowledged
//     unsoundness — internal/corpus/testdata/unsafe_publish.mj is a
//     concrete instance), but it can never add one.
func TestRandomProgramsConfigAgreement(t *testing.T) {
	run := func(seed int64, src string, name string, cfg Config) map[string]bool {
		res, err := RunSource("rand.mj", src, cfg)
		if err != nil {
			t.Fatalf("seed %d %s: %v\n--- program ---\n%s", seed, name, err, src)
		}
		if res.Err != nil {
			t.Fatalf("seed %d %s: runtime: %v\n--- program ---\n%s", seed, name, res.Err, src)
		}
		out := map[string]bool{}
		for _, o := range res.RacyObjects {
			out[o.String()] = true
		}
		return out
	}
	equal := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	superset := func(sup, sub map[string]bool) bool {
		for k := range sub {
			if !sup[k] {
				return false
			}
		}
		return true
	}
	for seed := int64(0); seed < 30; seed++ {
		src := generateProgram(seed)
		full := run(seed, src, "Full", Full())
		for _, c := range []struct {
			name string
			cfg  Config
		}{
			{"NoStatic", Full().NoStatic()},
			{"NoCache", Full().NoCache()},
			{"Packed", func() Config { c := Full(); c.PackedTrie = true; return c }()},
		} {
			if got := run(seed, src, c.name, c.cfg); !equal(got, full) {
				t.Fatalf("seed %d: %s reports %v, Full reported %v\n--- program ---\n%s",
					seed, c.name, got, full, src)
			}
		}
		for _, c := range []struct {
			name string
			cfg  Config
		}{
			{"NoDominators", Full().NoDominators()},
			{"NoPeeling", Full().NoPeeling()},
		} {
			if got := run(seed, src, c.name, c.cfg); !superset(got, full) {
				t.Fatalf("seed %d: %s (%v) dropped races that Full reported (%v)\n--- program ---\n%s",
					seed, c.name, got, full, src)
			}
		}
	}
}

// TestRandomProgramsDeterminism: identical config + seed reproduce the
// execution exactly.
func TestRandomProgramsDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := generateProgram(seed)
		r1, err := RunSource("rand.mj", src, Full().WithSeed(seed))
		if err != nil || r1.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, r1.Err)
		}
		r2, err := RunSource("rand.mj", src, Full().WithSeed(seed))
		if err != nil || r2.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, r2.Err)
		}
		if r1.Output != r2.Output || r1.Interp.Steps != r2.Interp.Steps {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
	}
}

// TestRandomProgramsSoundVsFullRace cross-validates the on-the-fly
// detector against ground truth: for every random program, each
// location the detector reports must have at least one racing pair in
// the FullRace set reconstructed from the recorded event log under the
// raw §2.4 definition. (The converse need not hold: the ownership
// model deliberately absorbs initialization hand-offs.)
func TestRandomProgramsSoundVsFullRace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := generateProgram(seed)
		var log strings.Builder
		cfg := Full()
		cfg.RecordTo = &log
		res, err := RunSource("rand.mj", src, cfg)
		if err != nil || res.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, res.Err)
		}
		pairs, err := postmortem.FullRace(strings.NewReader(log.String()), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		truth := map[event.Loc]bool{}
		for _, p := range pairs {
			truth[p.First.Loc] = true
		}
		for _, r := range res.Reports {
			if !truth[r.Access.Loc] {
				t.Fatalf("seed %d: detector reported %v but FullRace has no pair there\n--- program ---\n%s",
					seed, r.Access.Loc, src)
			}
		}
	}
}

// TestRandomProgramsBaselinesSuperset: Eraser and object-granularity
// detection report supersets of the trie detector's racy objects on
// every random program (the paper's §9 claim).
func TestRandomProgramsBaselinesSuperset(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := generateProgram(seed)
		full, err := RunSource("rand.mj", src, Full())
		if err != nil || full.Err != nil {
			t.Fatalf("seed %d: %v/%v", seed, err, full.Err)
		}
		ours := map[string]bool{}
		for _, o := range full.RacyObjects {
			ours[o.String()] = true
		}
		for _, det := range []DetectorKind{DetEraser, DetObjectRace} {
			res, err := RunSource("rand.mj", src, Full().WithDetector(det))
			if err != nil || res.Err != nil {
				t.Fatalf("seed %d %v: %v/%v", seed, det, err, res.Err)
			}
			theirs := map[string]bool{}
			for _, o := range res.RacyObjects {
				theirs[o.String()] = true
			}
			for o := range ours {
				if !theirs[o] {
					t.Fatalf("seed %d: %v missed object %s that the trie detector reports\n--- program ---\n%s",
						seed, det, o, src)
				}
			}
		}
	}
}
