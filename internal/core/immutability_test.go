package core

import (
	"strings"
	"testing"
)

// TestImmutabilityAnalysisOnHedcIdiom runs the §10 immutability
// analysis on the LinkedQueue publish idiom: capacity/queueId are
// init-only (observed immutable), count is written under the lock
// after publication (mutable-shared).
func TestImmutabilityAnalysisOnHedcIdiom(t *testing.T) {
	const src = `
class Q {
    int capacity;  // written at init only
    int count;     // mutated under the lock
    Q(int cap) { capacity = cap; count = 0; }
    synchronized void push() {
        if (count < capacity) { count = count + 1; }
    }
}
class W extends Thread {
    Q q;
    W(Q q0) { q = q0; }
    void run() {
        for (int i = 0; i < 10; i++) {
            if (q.capacity > 0) { q.push(); }
        }
    }
}
class Main {
    static void main() {
        Q q = new Q(64);
        W w1 = new W(q);
        W w2 = new W(q);
        w1.start(); w2.start();
        w1.join(); w2.join();
        print(q.count);
    }
}`
	cfg := Full()
	cfg.AnalyzeImmutability = true
	// Instrument everything so the analysis sees the lock-protected
	// accesses that the static race analysis would prune.
	cfg = cfg.NoStatic()
	res, err := RunSource("imm.mj", src, cfg)
	if err != nil || res.Err != nil {
		t.Fatalf("%v/%v", err, res.Err)
	}
	joined := strings.Join(res.ImmutabilityReports, "\n")
	if !strings.Contains(joined, "OBSERVED-IMMUTABLE Q.capacity") {
		t.Errorf("capacity should be observed immutable:\n%s", joined)
	}
	if !strings.Contains(joined, "MUTABLE-SHARED Q.count") {
		t.Errorf("count should be mutable-shared:\n%s", joined)
	}
}
