// Package racedet is the public API of a from-scratch reproduction of
//
//	Choi, Lee, Loginov, O'Callahan, Sarkar, Sridharan.
//	"Efficient and Precise Datarace Detection for Multithreaded
//	Object-Oriented Programs." PLDI 2002.
//
// The system detects dataraces in programs written in MJ, a small
// multithreaded object-oriented language with Java-style classes,
// synchronized methods and blocks, and Thread start/join. The pipeline
// mirrors Figure 1 of the paper:
//
//  1. static datarace analysis (points-to + interthread call graph +
//     escape analysis) computes the set of statements that may race;
//  2. optimized instrumentation inserts trace pseudo-instructions and
//     removes provably redundant ones with the static weaker-than
//     relation and loop peeling;
//  3. a runtime optimizer (per-thread access caches) filters redundant
//     access events;
//  4. the trie-based runtime detector applies the weaker-than relation
//     and reports at least one racing access per racy location.
//
// Quick start:
//
//	result, err := racedet.Detect("prog.mj", source, racedet.Options{})
//	for _, r := range result.Races {
//	    fmt.Println(r)
//	}
//
// The Options type exposes every configuration of the paper's
// evaluation (Table 2 performance ablations, Table 3 accuracy
// variants, and the baseline detectors of §8.3/§9).
package racedet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"racedet/internal/core"
	"racedet/internal/harness"
	"racedet/internal/interp"
	"racedet/internal/rt/detector"
	"racedet/internal/rt/postmortem"
	"racedet/internal/rt/trace"
)

// Detector selects the runtime race-detection algorithm.
type Detector int

// Detector algorithms.
const (
	// Trie is the paper's detector: ownership filter, per-thread
	// caches, and the trie-based weaker-than algorithm.
	Trie Detector = iota
	// Eraser is the classic lockset baseline (single common lock).
	Eraser
	// ObjectRace is the Praun-Gross object-granularity baseline.
	ObjectRace
	// HappensBefore is a vector-clock detector (Djit/TRaDe style).
	HappensBefore
)

// Options configures detection. The zero value is the paper's full
// configuration with the Trie detector.
type Options struct {
	// Detector selects the runtime algorithm (default Trie).
	Detector Detector

	// DisableStaticAnalysis skips the §5 static datarace analysis, so
	// every heap access is instrumented ("NoStatic").
	DisableStaticAnalysis bool
	// DisableWeakerThan skips the §6.1 compile-time redundant-trace
	// elimination and loop peeling ("NoDominators").
	DisableWeakerThan bool
	// DisablePeeling skips only the §6.3 loop peeling ("NoPeeling").
	DisablePeeling bool
	// DisableInterproc skips the interprocedural strengthenings of the
	// static phase — the flow-sensitive must-held-lockset dataflow and
	// the cross-call weaker-than elimination — leaving exactly the
	// per-function analysis ("NoInterproc").
	DisableInterproc bool
	// DisableCache skips the §4 runtime optimizer ("NoCache").
	DisableCache bool
	// DisableOwnership skips the §7 ownership filter ("NoOwnership").
	DisableOwnership bool
	// DisableJoinPseudoLocks skips the §2.3 join modeling; the
	// detector then behaves like a plain lockset checker across joins.
	DisableJoinPseudoLocks bool
	// MergeFields detects at object granularity ("FieldsMerged").
	MergeFields bool
	// ReportAllAccesses reports every racing access instead of one per
	// memory location.
	ReportAllAccesses bool
	// DetectDeadlocks additionally runs the lock-order-graph
	// potential-deadlock analysis (§10 future work, Goodlock-style).
	DetectDeadlocks bool
	// UsePackedTrie selects the §8.2 multi-location trie (one trie per
	// object with per-field entries) — same reports, smaller history.
	UsePackedTrie bool
	// AnalyzeImmutability additionally classifies every cross-thread
	// field as observed-immutable (written only before publication) or
	// mutable-shared (§10 future work).
	AnalyzeImmutability bool

	// PointsToWorkers > 0 runs the Andersen points-to solver on that
	// many parallel workers; the fixed point is identical to the
	// serial solver's (0 = serial).
	PointsToWorkers int
	// FactCacheDir, when non-empty, persists static-analysis results
	// keyed by content digests under this directory; recompiles of
	// unchanged functions replay them instead of re-analyzing.
	FactCacheDir string

	// Seed perturbs the deterministic scheduler (0 = fixed
	// round-robin quantum). Any seed detects the same lockset races on
	// well-formed programs; sweeping seeds exercises interleavings.
	Seed int64
	// Quantum is the preemption interval in interpreted instructions
	// (default 40).
	Quantum int
	// MaxSteps bounds execution (default 200M instructions).
	MaxSteps uint64
	// Stdout receives the program's print output (nil = captured
	// only in Result.Output).
	Stdout io.Writer
	// RecordTo, when non-nil, streams the runtime event log to this
	// writer for post-mortem analysis (replay with Replay, or
	// reconstruct all racing pairs with FullRace). See §1/§2.6 of the
	// paper.
	RecordTo io.Writer
	// TraceTo, when non-nil, additionally records the run as a compact
	// binary event trace (.mjtrace): delta-encoded, lockset-interned,
	// segment-indexed. Replay it into any detector configuration with
	// ReplayTrace — record once, analyze many. The trace is finalized
	// even when the run fails, so partial traces stay valid.
	TraceTo io.Writer

	// RecordSchedule captures the scheduler's decision sequence in
	// Result.Schedule (mjsched text). Feeding it back through
	// ReplaySchedule reproduces the run — and any race it reported —
	// deterministically.
	RecordSchedule bool
	// ReplaySchedule, when non-empty, replays a recorded schedule
	// trace (mjsched text) instead of scheduling live. Seed and
	// Quantum are taken from the trace.
	ReplaySchedule []byte

	// Timeout bounds the execution's wall-clock time (0 = none); on
	// expiry Detect fails with a *RuntimeError of kind "watchdog".
	Timeout time.Duration
	// LivelockWindow terminates executions that make no heap progress
	// for this many consecutive scheduler slices (0 = disabled),
	// failing with a *RuntimeError of kind "livelock". It catches
	// spinning programs long before the instruction budget would.
	LivelockWindow int

	// MaxTrieNodes, MaxCacheThreads, and MaxOwnerLocations bound the
	// memory of the trie history, the per-thread caches, and the
	// ownership table (0 = unbounded). Over budget the layers degrade
	// gracefully — strictly more reporting, never a silently dropped
	// race — and the degradation is quantified in Stats.
	MaxTrieNodes      int
	MaxCacheThreads   int
	MaxOwnerLocations int

	// Shards, when > 1, runs detection on that many location-sharded
	// worker goroutines. Race reports are merged deterministically and
	// match the serial back end byte for byte (for unbounded detector
	// memory). Only the trie detector honors it.
	Shards int
	// BatchSize, when > 0, buffers access events per thread and hands
	// them to the detector in batches of up to this size; event order
	// and reports are unchanged.
	BatchSize int

	// JournalCap enables fault tolerance for sharded detection: each
	// shard journals its routed events and checkpoints its state, so a
	// crashed worker is restarted and replayed — and, once RetryBudget
	// is exhausted, degraded to a simpler lockset detector — instead of
	// failing the run (0 = off). Recovery work is quantified in Stats.
	JournalCap int
	// RetryBudget is the number of restart attempts per shard before it
	// degrades (0 = degrade on the first crash). Meaningful only with
	// JournalCap > 0.
	RetryBudget int
	// ShardQueueDepth bounds each shard's event queue in messages
	// (0 = a small default). A full queue blocks the event producer
	// unless DropOnBackpressure is set.
	ShardQueueDepth int
	// DropOnBackpressure sheds load instead of blocking when a shard
	// queue is full: access batches are dropped with exact accounting
	// in Stats (the run may then under-report races). Control events
	// are never dropped.
	DropOnBackpressure bool
	// FaultInjection is a deterministic fault-injection spec for
	// robustness testing of sharded detection, e.g.
	// "panic:shard=1,event=100" (see internal/faultinject for the
	// syntax). Empty disables injection; an invalid spec fails Detect.
	FaultInjection string

	// SampleK > 0 enables adaptive per-site throttling: a static
	// access site that produces SampleK consecutive clean observations
	// demotes to a counting-only stub, and is re-armed the moment the
	// ownership table reports new-thread contact on a location the
	// site touched. Stub suppression is per-location and write-aware:
	// only traffic that provably cannot complete a race pair — against
	// either concurrently suppressed accesses or the trie's shipped
	// history — is dropped, plus all traffic on locations whose
	// shipped history already guarantees a race report. Stable
	// (recurring) races are therefore still reported; the residual
	// blind spot is a race whose only occurrence is a single access
	// at an already-demoted site.
	// Requires the ownership filter (ignored with DisableOwnership).
	// Sampling lives in the detector's filter, never the recorder:
	// traces recorded with TraceTo capture the full stream, and replay
	// with sampling on matches a live sampled run.
	SampleK int
	// SampleBudget, in (0, 1], targets a shipped-events ratio: the
	// throttle halves or doubles K per 4096-event window to keep
	// shipped/observed near the budget. Setting SampleBudget alone
	// implies SampleK = 16 as the starting point.
	SampleBudget float64
	// Priors seeds the sampler with the static lock-discipline tiers:
	// "on" pins statically unguarded and guarded-inconsistent sites
	// armed and demotes guarded-consistent sites at a quarter of K;
	// "invert" swaps the two (the ablation mode); "" or "off" ignores
	// the tiers. Requires sampling (SampleK/SampleBudget) and static
	// analysis; meaningless for trace replay, which has no compiled
	// pipeline to take tiers from.
	Priors string
}

func (o Options) config() core.Config {
	cfg := core.Full()
	cfg.Static = !o.DisableStaticAnalysis
	if o.DisableWeakerThan {
		cfg = cfg.NoDominators()
	}
	if o.DisablePeeling {
		cfg = cfg.NoPeeling()
	}
	cfg.Interproc = !o.DisableInterproc
	cfg.PtsWorkers = o.PointsToWorkers
	cfg.FactCacheDir = o.FactCacheDir
	cfg.Cache = !o.DisableCache
	cfg.Ownership = !o.DisableOwnership
	cfg.PseudoLocks = !o.DisableJoinPseudoLocks
	cfg.FieldsMerged = o.MergeFields
	cfg.ReportAll = o.ReportAllAccesses
	cfg.DetectDeadlocks = o.DetectDeadlocks
	cfg.PackedTrie = o.UsePackedTrie
	cfg.AnalyzeImmutability = o.AnalyzeImmutability
	cfg.Seed = o.Seed
	cfg.Quantum = o.Quantum
	cfg.MaxSteps = o.MaxSteps
	cfg.Out = o.Stdout
	cfg.RecordTo = o.RecordTo
	cfg.TraceTo = o.TraceTo
	cfg.RecordSchedule = o.RecordSchedule
	cfg.Timeout = o.Timeout
	cfg.LivelockWindow = o.LivelockWindow
	cfg.MaxTrieNodes = o.MaxTrieNodes
	cfg.MaxCacheThreads = o.MaxCacheThreads
	cfg.MaxOwnerLocations = o.MaxOwnerLocations
	cfg.Shards = o.Shards
	cfg.BatchSize = o.BatchSize
	cfg.JournalCap = o.JournalCap
	cfg.RetryBudget = o.RetryBudget
	cfg.ShardQueueDepth = o.ShardQueueDepth
	cfg.DropOnBackpressure = o.DropOnBackpressure
	cfg.FaultSpec = o.FaultInjection
	cfg.SampleK = o.SampleK
	cfg.SampleBudget = o.SampleBudget
	cfg.Priors = o.Priors
	switch o.Detector {
	case Eraser:
		cfg.Detector = core.DetEraser
	case ObjectRace:
		cfg.Detector = core.DetObjectRace
	case HappensBefore:
		cfg.Detector = core.DetVClock
	default:
		cfg.Detector = core.DetTrie
	}
	return cfg
}

// Race is one reported datarace.
type Race struct {
	// Field is the raced location's name: "Class.field" or "[]" for
	// array elements.
	Field string
	// Object describes the object owning the location, including its
	// allocation site.
	Object string
	// Pos is the source location of the reported access.
	Pos string
	// Thread executed the reported access; PriorThread is what is
	// known about the earlier conflicting access ("t⊥" when only "at
	// least two threads" is known, §3.1).
	Thread      string
	PriorThread string
	// Kind and PriorKind are READ or WRITE.
	Kind      string
	PriorKind string
	// Locks and PriorLocks are the locksets of the two accesses.
	Locks      string
	PriorLocks string
	// StaticPartners lists the source locations the static analysis
	// identified as potential racing partners of this access (§2.6's
	// debugging support); empty when static analysis was disabled.
	StaticPartners []string
}

func (r Race) String() string {
	return fmt.Sprintf("datarace on %s of %s: %s by %s holding %s at %s; earlier %s by %s holding %s",
		r.Field, r.Object, r.Kind, r.Thread, r.Locks, r.Pos, r.PriorKind, r.PriorThread, r.PriorLocks)
}

// Stats summarizes the work each pipeline stage performed.
type Stats struct {
	// Static analysis.
	AccessSites       int // heap-access statements in the program
	StaticRaceSet     int // statements that may race (instrumented)
	ThreadLocalPruned int // accesses discarded by escape analysis

	// Instrumentation.
	TracesInserted   int
	TracesEliminated int // removed by the static weaker-than relation
	LoopsPeeled      int

	// Runtime.
	Instructions uint64 // interpreted instructions
	TraceEvents  uint64 // executed trace instructions
	CacheHits    uint64
	OwnerSkips   uint64 // events absorbed by the ownership filter
	TrieEvents   uint64 // events reaching the trie detector
	TrieNodes    int    // history size at exit
	Threads      int

	// Degradation counters of the bounded-memory modes (all zero when
	// no Max* bound was set or none was hit). Non-zero values mean the
	// run may over-report races, never under-report.
	TrieCollapses        uint64 // per-location histories discarded
	CacheThreadEvictions uint64 // whole per-thread caches discarded
	OwnerOverflows       uint64 // accesses forwarded as born-shared

	// Fault-tolerance counters of supervised sharded runs (all zero
	// for serial or unsupervised runs). WorkerRestarts and
	// EventsReplayed describe exact recoveries; DegradedShards > 0 or
	// DroppedEvents > 0 mean the affected shards' reports are
	// best-effort rather than byte-exact.
	WorkerRestarts uint64
	EventsReplayed uint64
	Checkpoints    uint64
	DegradedShards int
	DegradedEvents uint64
	DroppedEvents  uint64
	// BackpressureStalls counts blocking sends that found a shard
	// queue full (router stalls); long-running services watch it to
	// size their queues.
	BackpressureStalls uint64
	QueueHighWater     int

	// Adaptive-sampling counters (all zero unless Options.SampleK or
	// Options.SampleBudget enabled throttling). The filter stages
	// account for every observed event exactly once:
	//
	//	TraceEvents == EventsShipped + CacheHits + OwnerSkips + EventsSuppressed
	//
	// EventsShipped counts events that reached the trie detector;
	// EventsSuppressed counts events absorbed by demoted sites.
	EventsShipped    uint64
	EventsSuppressed uint64
	// SitesSampled is the number of distinct static access sites seen;
	// SitesDemoted / SitesRearmed count demotion and re-arm
	// transitions (a site may cycle several times). SampleK is the
	// throttle's K at exit (adaptive runs move it within [2, 1024]).
	SitesSampled int
	SitesDemoted uint64
	SitesRearmed uint64
	SampleK      int
	// PriorHighSites / PriorLowSites count sites carrying a high
	// (pinned armed) resp. low (fast-demoting) static discipline
	// prior; PriorFastDemotions counts demotions that fired at the
	// reduced low-prior threshold. All zero unless Options.Priors
	// enabled prior seeding.
	PriorHighSites     int
	PriorLowSites      int
	PriorFastDemotions uint64

	// Fact-cache outcome of this run's compile (all zero when
	// Options.FactCacheDir was empty). FactCacheProgramHit means the
	// whole static phase was replayed; otherwise FactCacheFnHits /
	// FactCacheFnMisses count per-function replays vs re-analyses.
	FactCacheProgramHit bool
	FactCacheFnHits     int
	FactCacheFnMisses   int
	// FactCacheWriteErrors counts cache stores that failed (full disk,
	// unwritable dir) and degraded the cache to a no-op — the analysis
	// itself is unaffected.
	FactCacheWriteErrors int
}

// Result is the outcome of Detect.
type Result struct {
	// Races lists the reported dataraces (deduplicated per memory
	// location unless Options.ReportAllAccesses).
	Races []Race
	// RacyObjects is the number of distinct objects named in Races —
	// the quantity Table 3 of the paper counts.
	RacyObjects int
	// BaselineReports carries the textual reports when a baseline
	// detector ran instead of the paper's.
	BaselineReports []string
	// PotentialDeadlocks lists lock-order cycles found when
	// Options.DetectDeadlocks is set.
	PotentialDeadlocks []string
	// Immutability lists per-field mutability verdicts when
	// Options.AnalyzeImmutability is set.
	Immutability []string
	// Output is the program's print output.
	Output string
	// Schedule is the recorded scheduling decision sequence in mjsched
	// text (empty unless Options.RecordSchedule); feed it back via
	// Options.ReplaySchedule to reproduce the run.
	Schedule []byte
	// Stats exposes per-stage work counters.
	Stats Stats
	// Duration is the wall-clock execution time.
	Duration time.Duration
}

// RuntimeError describes a failed execution: a deadlock, a wall-clock
// watchdog expiry, a livelock, an exhausted step budget, an
// interpreter panic, a schedule-replay divergence, or a program fault.
// Retrieve it with errors.As; ThreadDump is a postmortem of every
// thread's state at failure.
type RuntimeError struct {
	// Kind is one of "deadlock", "watchdog", "livelock", "step-budget",
	// "panic", "schedule-divergence", "fault".
	Kind string
	// Thread is the thread the failure is attributed to (may be empty).
	Thread string
	// Msg is the failure description.
	Msg string
	// ThreadDump lists every thread's state ("T1 blocked on obj#3...").
	ThreadDump string

	err error
}

func (e *RuntimeError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying error for errors.Is/As chains.
func (e *RuntimeError) Unwrap() error { return e.err }

// wrapRuntime converts interpreter errors to the public RuntimeError.
func wrapRuntime(err error) error {
	var re *interp.RuntimeError
	if errors.As(err, &re) {
		return &RuntimeError{
			Kind:       re.Kind.String(),
			Thread:     re.Thread.String(),
			Msg:        re.Msg,
			ThreadDump: re.Dump,
			err:        err,
		}
	}
	return err
}

// Detect compiles and runs the MJ program in src (file is used in
// diagnostics) and reports the dataraces observed in its execution.
// A non-nil error means the program failed to compile or crashed at
// runtime (races found do not make Detect fail); execution failures
// carry a *RuntimeError retrievable with errors.As.
//
// When the failure is a *RuntimeError — the program executed but was
// cut short by a deadlock, watchdog, livelock, step budget, or panic —
// the returned Result is non-nil and carries everything detected up to
// the failure point: an aborted analysis still reports the races it
// saw. Any other error returns a nil Result.
func Detect(file, src string, opts Options) (*Result, error) {
	cfg := opts.config()
	if len(opts.ReplaySchedule) > 0 {
		tr, err := interp.DecodeSchedule(bytes.NewReader(opts.ReplaySchedule))
		if err != nil {
			return nil, err
		}
		cfg.ReplaySchedule = tr
	}
	res, err := core.RunSource(file, src, cfg)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		// Partial results survive the failure: the detector has already
		// finalized, so the reports below are exactly the races observed
		// before the run was cut short.
		return convert(res), wrapRuntime(res.Err)
	}
	return convert(res), nil
}

// Compiled is a compiled MJ program that can be executed repeatedly
// (e.g. with different seeds) without re-running the static phases.
type Compiled struct {
	pipe *core.Pipeline
}

// Compile runs the static phases only (parse, typecheck, analysis,
// instrumentation).
func Compile(file, src string, opts Options) (*Compiled, error) {
	pipe, err := core.Compile(file, src, opts.config())
	if err != nil {
		return nil, err
	}
	return &Compiled{pipe: pipe}, nil
}

// StaticReport renders the per-access-site keep/kill decisions of the
// static phase (the racedet -explain-static report): for each heap
// access, which §5 condition killed its instrumentation, or which §6
// weaker-than elimination removed its trace.
func (c *Compiled) StaticReport() string {
	return c.pipe.FactsReport()
}

// DisciplineReport renders the severity-ranked lock-discipline pair
// report (racedet -static-report): every surviving may-race pair
// graded unguarded / guarded-inconsistent / start-ordered, with the
// must-held locks of each side, plus per-tier site counts. Byte-stable
// across recompiles, including fact-cache hits. Empty when static
// analysis was disabled.
func (c *Compiled) DisciplineReport() string {
	return c.pipe.DisciplineReport()
}

// UnguardedPairs is the number of live (non-demoted) statically
// unguarded may-race pairs — the racedet -static-only exit criterion.
func (c *Compiled) UnguardedPairs() int {
	return c.pipe.StaticStats.TierUnguardedPairs
}

// Run executes the compiled program once.
func (c *Compiled) Run() (*Result, error) {
	res, err := c.pipe.Run()
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, wrapRuntime(res.Err)
	}
	return convert(res), nil
}

// RunSeed executes the compiled program under a different scheduler
// seed.
func (c *Compiled) RunSeed(seed int64) (*Result, error) {
	saved := c.pipe.Config.Seed
	c.pipe.Config.Seed = seed
	defer func() { c.pipe.Config.Seed = saved }()
	return c.Run()
}

// Replay performs post-mortem detection on an event log previously
// recorded via Options.RecordTo: the detector configured by opts sees
// exactly the event stream of the original run, so its reports match
// the on-the-fly ones (§1).
func Replay(r io.Reader, opts Options) (*Result, error) {
	res, err := core.ReplayLog(r, opts.config())
	if err != nil {
		return nil, err
	}
	return convert(res), nil
}

// ReplayTrace performs offline detection on a binary event trace
// previously recorded via Options.TraceTo: the detector stack
// configured by opts (serial or sharded, any ablation) sees exactly
// the event stream of the original run without re-executing the
// program, so at the recording configuration the verdicts are
// byte-identical to the live run's. parallel bounds the trace's
// segment-decode workers (<= 0 selects GOMAXPROCS); event delivery is
// always in recorded order. A corrupt or truncated trace fails with a
// *trace.FormatError.
func ReplayTrace(path string, opts Options, parallel int) (*Result, error) {
	tr, err := trace.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return replayTrace(tr, opts, parallel)
}

// ReplayTraceData is ReplayTrace over an in-memory trace, for callers
// that receive traces over the wire (racedetd trace jobs).
func ReplayTraceData(data []byte, opts Options, parallel int) (*Result, error) {
	tr, err := trace.NewReader(data)
	if err != nil {
		return nil, err
	}
	return replayTrace(tr, opts, parallel)
}

func replayTrace(tr *trace.Reader, opts Options, parallel int) (*Result, error) {
	res, err := core.ReplayTrace(tr, opts.config(), parallel)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, wrapRuntime(res.Err)
	}
	return convert(res), nil
}

// RacePair renders one element of FullRace: two accesses of the
// recorded execution that satisfy the IsRace predicate.
type RacePair struct {
	First  string
	Second string
}

// FullRace reconstructs every racing access pair from a recorded event
// log — the O(N²) analysis the on-the-fly detector deliberately
// summarizes to one report per memory location (§2.5, §2.6). maxPairs
// bounds the output (0 = unlimited).
func FullRace(r io.Reader, maxPairs int) ([]RacePair, error) {
	pairs, err := postmortem.FullRace(r, maxPairs)
	if err != nil {
		return nil, err
	}
	out := make([]RacePair, len(pairs))
	for i, p := range pairs {
		out[i] = RacePair{First: p.First.String(), Second: p.Second.String()}
	}
	return out, nil
}

func convert(res *core.RunResult) *Result {
	out := &Result{
		RacyObjects:        len(res.RacyObjects),
		BaselineReports:    res.BaselineReports,
		PotentialDeadlocks: res.DeadlockReports,
		Immutability:       res.ImmutabilityReports,
		Output:             res.Output,
		Duration:           res.Duration,
		Stats: Stats{
			AccessSites:          res.StaticStats.AccessSites,
			StaticRaceSet:        res.StaticStats.RaceSetSize,
			ThreadLocalPruned:    res.StaticStats.ThreadLocalPruned,
			TracesInserted:       res.InstrStats.Inserted,
			TracesEliminated:     res.InstrStats.Eliminated,
			LoopsPeeled:          res.InstrStats.LoopsPeeled,
			Instructions:         res.Interp.Steps,
			TraceEvents:          res.Interp.TraceEvents,
			CacheHits:            res.DetectorStats.CacheHits,
			OwnerSkips:           res.DetectorStats.OwnerSkips,
			TrieEvents:           res.DetectorStats.Trie.Events,
			TrieNodes:            res.TrieNodes,
			Threads:              res.Interp.ThreadsUsed,
			TrieCollapses:        res.DetectorStats.Trie.Collapses,
			CacheThreadEvictions: res.DetectorStats.Cache.ThreadEvictions,
			OwnerOverflows:       res.DetectorStats.OwnerOverflows,
			WorkerRestarts:       res.DetectorStats.Recovery.Restarts,
			EventsReplayed:       res.DetectorStats.Recovery.Replayed,
			Checkpoints:          res.DetectorStats.Recovery.Checkpoints,
			DegradedShards:       res.DetectorStats.Recovery.DegradedShards,
			DegradedEvents:       res.DetectorStats.Recovery.DegradedEvents,
			DroppedEvents:        res.DetectorStats.Recovery.DroppedEvents,
			BackpressureStalls:   res.DetectorStats.Recovery.BackpressureStalls,
			QueueHighWater:       res.DetectorStats.Recovery.QueueHighWater,
			EventsShipped:        res.DetectorStats.Shipped,
			EventsSuppressed:     res.DetectorStats.Sample.Suppressed,
			SitesSampled:         res.DetectorStats.Sample.Sites,
			SitesDemoted:         res.DetectorStats.Sample.Demotions,
			SitesRearmed:         res.DetectorStats.Sample.Rearms,
			SampleK:              res.DetectorStats.Sample.CurrentK,
			PriorHighSites:       res.DetectorStats.Sample.PriorHighSites,
			PriorLowSites:        res.DetectorStats.Sample.PriorLowSites,
			PriorFastDemotions:   res.DetectorStats.Sample.PriorFastDemotions,
			FactCacheProgramHit:  res.FactCache.ProgramHit,
			FactCacheFnHits:      res.FactCache.FnHits,
			FactCacheFnMisses:    res.FactCache.FnMisses,
			FactCacheWriteErrors: res.FactCache.WriteErrors,
		},
	}
	if res.Schedule != nil {
		out.Schedule = []byte(res.Schedule.String())
	}
	for i, r := range res.Reports {
		race := raceFromReport(r)
		if i < len(res.StaticHints) {
			race.StaticPartners = res.StaticHints[i]
		}
		out.Races = append(out.Races, race)
	}
	return out
}

func raceFromReport(r detector.Report) Race {
	return Race{
		Field:       r.Access.FieldName,
		Object:      r.ObjDesc,
		Pos:         r.Access.Pos.String(),
		Thread:      r.Access.Thread.String(),
		PriorThread: r.PriorThread.String(),
		Kind:        r.Access.Kind.String(),
		PriorKind:   r.PriorKind.String(),
		Locks:       r.Access.Locks.String(),
		PriorLocks:  r.PriorLocks.String(),
	}
}

// FuzzOptions configures schedule-fuzzing via Fuzz.
type FuzzOptions struct {
	// Options configures each individual run (detector, pipeline
	// ablations, quantum, timeout, livelock window, memory bounds).
	// Seed, Stdout, RecordTo, and the schedule fields are ignored: the
	// harness owns the seed sweep and records every schedule itself.
	Options Options

	// Seeds lists the scheduler seeds to explore; when nil, seeds
	// 0..Count-1 are used (Count defaulting to 8). Seed 0 is the fixed
	// round-robin schedule, so default sweeps always include the
	// deterministic baseline.
	Seeds []int64
	Count int

	// Workers bounds parallelism (default: one per CPU). Results are
	// independent of worker count.
	Workers int
}

// SeedOutcome is one seed's execution outcome within a fuzz sweep.
type SeedOutcome struct {
	Seed     int64
	Races    int
	Output   string
	Duration time.Duration
	// Err is the run's terminal error (carrying a *RuntimeError for
	// execution failures), nil for a clean exit.
	Err error
}

// FuzzFinding is one distinct race aggregated across a fuzz sweep,
// keyed by the raced field.
type FuzzFinding struct {
	// Race is the canonical witness report, taken from the smallest
	// exposing seed.
	Race Race
	// Seeds lists every seed whose run exposed the race, ascending.
	Seeds []int64
	// MinSeed is the smallest exposing seed.
	MinSeed int64
	// Stable reports whether every completed schedule exposed the
	// race; false marks a schedule-dependent race that a single fixed
	// schedule could miss.
	Stable bool
	// Schedule is the witness schedule trace in mjsched text; running
	// Detect with Options.ReplaySchedule set to it reproduces the race
	// deterministically.
	Schedule []byte
}

// FuzzResult aggregates a fuzz sweep.
type FuzzResult struct {
	// Findings is the union of races over all runs: stable findings
	// first, then by ascending MinSeed.
	Findings []FuzzFinding
	// Outcomes has one entry per seed, in sweep order.
	Outcomes []SeedOutcome
	// Completed counts runs that terminated without a runtime error;
	// Failed counts the rest.
	Completed int
	Failed    int
}

// Stable returns the findings every completed schedule exposed.
func (r *FuzzResult) Stable() []FuzzFinding { return r.filter(true) }

// ScheduleDependent returns the findings at least one completed
// schedule missed.
func (r *FuzzResult) ScheduleDependent() []FuzzFinding { return r.filter(false) }

func (r *FuzzResult) filter(stable bool) []FuzzFinding {
	var out []FuzzFinding
	for _, f := range r.Findings {
		if f.Stable == stable {
			out = append(out, f)
		}
	}
	return out
}

// Fuzz compiles the program once and executes it under many scheduler
// seeds in parallel, unioning the reported dataraces and classifying
// each as stable (reported on every schedule) or schedule-dependent
// (reported only on some — the races a single fixed schedule misses).
// Every finding carries a witness schedule trace that reproduces it
// deterministically via Options.ReplaySchedule.
//
// Individual run failures (deadlock, watchdog, livelock, interpreter
// panic) are recorded per seed in Outcomes and do not abort the sweep;
// Fuzz itself only fails on compile errors or harness misuse.
func Fuzz(file, src string, opts FuzzOptions) (*FuzzResult, error) {
	base := opts.Options
	base.Stdout = nil
	base.RecordTo = nil
	base.ReplaySchedule = nil
	sum, err := harness.ExploreSource(file, src, harness.Options{
		Config:         base.config(),
		Seeds:          opts.Seeds,
		Count:          opts.Count,
		Workers:        opts.Workers,
		Timeout:        base.Timeout,
		LivelockWindow: base.LivelockWindow,
	})
	if err != nil {
		return nil, err
	}
	out := &FuzzResult{Completed: sum.Completed, Failed: sum.Failed}
	for _, f := range sum.Findings {
		ff := FuzzFinding{
			Race:    raceFromReport(f.Report),
			Seeds:   f.Seeds,
			MinSeed: f.MinSeed,
			Stable:  f.Stable,
		}
		if f.Trace != nil {
			ff.Schedule = []byte(f.Trace.String())
		}
		out.Findings = append(out.Findings, ff)
	}
	for _, oc := range sum.Outcomes {
		out.Outcomes = append(out.Outcomes, SeedOutcome{
			Seed:     oc.Seed,
			Races:    oc.Races,
			Output:   oc.Output,
			Duration: oc.Duration,
			Err:      wrapErrNonNil(oc.Err),
		})
	}
	return out, nil
}

func wrapErrNonNil(err error) error {
	if err == nil {
		return nil
	}
	return wrapRuntime(err)
}
